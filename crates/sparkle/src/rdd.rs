//! Resilient distributed datasets (eager, simulated) — now actually
//! *resilient*: a persisted RDD can carry a [`Lineage`], and cached
//! partitions dropped by a simulated node crash are recomputed from it
//! (charged to the virtual clock and logged as recovery events) before
//! the next stage reads them. Recomputation reproduces the exact bytes
//! the crash destroyed, so results stay bitwise identical under any
//! fault plan.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dcluster::{SimCluster, StageOptions};
use linalg::Wire;

/// Deterministic pairwise tree reduction: adjacent values merge in rounds
/// until one remains. The merge structure is a function of the input count
/// only — never of worker count or completion order — so drivers reducing
/// per-partition partials this way keep the bit-determinism contract while
/// cutting the reduction's dependency depth from `P − 1` to `⌈log₂ P⌉`.
///
/// An empty input returns `init()`; a single value is returned unmerged
/// (matching the old sequential fold's semantics for those cases).
pub fn tree_merge<A, FI, FM>(mut parts: Vec<A>, init: FI, merge: FM) -> A
where
    FI: FnOnce() -> A,
    FM: Fn(&mut A, A),
{
    if parts.is_empty() {
        return init();
    }
    while parts.len() > 1 {
        let mut next = Vec::with_capacity((parts.len() + 1) / 2);
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                merge(&mut a, b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.into_iter().next().expect("non-empty after rounds")
}

/// How a lost cached partition is rebuilt: a human-readable chain of
/// stage labels (for reports), the DFS file the chain starts from (its
/// per-partition share is re-read when recomputing), and the recompute
/// closure itself, which must return exactly the bytes partition `pidx`
/// held before the crash.
pub struct Lineage<'a, T> {
    /// Stage labels from source to cached RDD (reporting only).
    pub chain: Vec<String>,
    /// DFS file the chain reads from, if any.
    pub source: Option<String>,
    /// Rebuilds partition `pidx` from scratch.
    pub recompute: Box<dyn Fn(usize) -> Vec<T> + Send + Sync + 'a>,
}

impl<'a, T> Lineage<'a, T> {
    /// A lineage with the given label chain and recompute function.
    pub fn new(
        chain: Vec<String>,
        recompute: Box<dyn Fn(usize) -> Vec<T> + Send + Sync + 'a>,
    ) -> Self {
        Lineage { chain, source: None, recompute }
    }

    /// Names the DFS file the chain reads from; its per-partition share is
    /// charged as a DFS read on every recomputation.
    pub fn with_source(mut self, file: impl Into<String>) -> Self {
        self.source = Some(file.into());
        self
    }
}

impl<T> fmt::Debug for Lineage<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lineage")
            .field("chain", &self.chain)
            .field("source", &self.source)
            .finish_non_exhaustive()
    }
}

/// A cache registered with the cluster's fault domain: the partition
/// blocks live behind a mutex because a crash invalidates them and the
/// next stage rebuilds them in place.
struct CachedStorage<'a, T> {
    /// Id from [`SimCluster::register_cache`].
    id: u64,
    /// Element count per partition (layout metadata survives crashes —
    /// the driver knows it).
    sizes: Vec<usize>,
    /// Dataset bytes (for `persist` bookkeeping).
    total_bytes: u64,
    lineage: Lineage<'a, T>,
    /// The resident blocks. A slot whose partition was marked lost by a
    /// crash holds stale data that is overwritten from lineage before any
    /// stage can read it (see [`Rdd::snapshot`]).
    slots: Mutex<Vec<Arc<Vec<T>>>>,
}

enum Storage<'a, T> {
    /// Uncached: plain shared partition blocks (crashes don't touch them —
    /// they model ephemeral stage outputs consumed before any crash).
    Plain(Vec<Arc<Vec<T>>>),
    /// Persisted with lineage: blocks registered with the fault domain.
    Cached(Arc<CachedStorage<'a, T>>),
}

impl<T> Clone for Storage<'_, T> {
    fn clone(&self) -> Self {
        match self {
            Storage::Plain(p) => Storage::Plain(p.clone()),
            Storage::Cached(c) => Storage::Cached(Arc::clone(c)),
        }
    }
}

impl<T> fmt::Debug for Storage<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storage::Plain(p) => write!(f, "Plain({} partitions)", p.len()),
            Storage::Cached(c) => write!(f, "Cached(id={}, {} partitions)", c.id, c.sizes.len()),
        }
    }
}

/// A partitioned in-memory dataset bound to a simulated cluster.
///
/// Cloning is cheap (partitions are shared `Arc`s) — the pattern for
/// iterative algorithms is to build the input RDD once, `persist` it, and
/// run one narrow stage per iteration against it, exactly how sPCA-Spark
/// keeps `Y` cached across EM iterations.
#[derive(Debug, Clone)]
pub struct Rdd<'a, T> {
    cluster: &'a SimCluster,
    task_overhead_secs: f64,
    storage: Storage<'a, T>,
    /// Bytes that do not fit in aggregate cluster memory and are re-read
    /// from disk by every stage over this RDD (0 unless `persist` finds the
    /// dataset oversized).
    spill_bytes: u64,
}

impl<'a, T: Send + Sync> Rdd<'a, T> {
    pub(crate) fn from_parts(
        cluster: &'a SimCluster,
        task_overhead_secs: f64,
        partitions: Vec<Arc<Vec<T>>>,
    ) -> Self {
        Rdd { cluster, task_overhead_secs, storage: Storage::Plain(partitions), spill_bytes: 0 }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        match &self.storage {
            Storage::Plain(p) => p.len(),
            Storage::Cached(c) => c.sizes.len(),
        }
    }

    /// Element count per partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        match &self.storage {
            Storage::Plain(p) => p.iter().map(|p| p.len()).collect(),
            Storage::Cached(c) => c.sizes.clone(),
        }
    }

    /// Total number of elements. Free — the layout is known to the driver.
    pub fn count(&self) -> usize {
        self.partition_sizes().iter().sum()
    }

    /// The partition blocks every stage over this RDD reads, healing the
    /// cache first if a crash invalidated blocks: each lost partition is
    /// recomputed from lineage (in ascending partition order — the order,
    /// like the loss itself, is a pure function of indices, so recovery
    /// logs are deterministic), its source share re-read from the DFS, the
    /// recompute time charged to the virtual clock.
    fn snapshot(&self) -> Vec<Arc<Vec<T>>> {
        match &self.storage {
            Storage::Plain(p) => p.clone(),
            Storage::Cached(c) => {
                let lost = self.cluster.take_lost_partitions(c.id);
                let mut slots = c.slots.lock().unwrap_or_else(|e| e.into_inner());
                for p in lost {
                    if let Some(src) = &c.lineage.source {
                        let share = self
                            .cluster
                            .dfs()
                            .stat(src)
                            .unwrap_or_else(|| {
                                panic!(
                                    "lineage recompute of partition {p}: source {src:?} is \
                                     gone from the DFS (under-replicated input?)"
                                )
                            })
                            / slots.len().max(1) as u64;
                        self.cluster.charge_dfs_read_labeled(share, "lineage-reread");
                    }
                    let start = Instant::now();
                    let data = (c.lineage.recompute)(p);
                    assert_eq!(
                        data.len(),
                        c.sizes[p],
                        "lineage recompute of partition {p} changed its size"
                    );
                    slots[p] = Arc::new(data);
                    self.cluster.note_partition_recomputed(
                        c.id,
                        p,
                        start.elapsed().as_secs_f64(),
                    );
                }
                slots.clone()
            }
        }
    }

    /// The cluster this RDD lives on.
    pub fn cluster(&self) -> &'a SimCluster {
        self.cluster
    }

    fn stage_options(&self, label: &str) -> StageOptions {
        StageOptions::new(label).with_task_overhead(self.task_overhead_secs)
    }

    /// Charges the per-stage disk penalty for the cached-but-spilled
    /// fraction, if any.
    fn charge_spill(&self) {
        if self.spill_bytes > 0 {
            self.cluster.charge_dfs_read_labeled(self.spill_bytes, "spill-reread");
            if obs::enabled() {
                self.cluster.registry().counter("sparkle.spill_bytes").add(self.spill_bytes);
            }
        }
    }

    /// Runs one task per partition, each producing a new output partition.
    /// The fundamental narrow transformation; everything else builds on it.
    pub fn map_partitions<U, F>(&self, label: &str, f: F) -> Rdd<'a, U>
    where
        U: Send + Sync,
        F: Fn(&[T]) -> Vec<U> + Sync,
    {
        self.charge_spill();
        let f = &f;
        let tasks: Vec<_> = self
            .snapshot()
            .into_iter()
            .map(|p| move || f(&p))
            .collect();
        let outputs = self.cluster.run_stage(self.stage_options(label), tasks);
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            storage: Storage::Plain(outputs.into_iter().map(Arc::new).collect()),
            spill_bytes: 0,
        }
    }

    /// [`Self::map_partitions`] with the partition's index passed to the
    /// task — Spark's `mapPartitionsWithIndex`. The index comes from the
    /// RDD's layout, not from execution order, so per-partition seeding
    /// derived from it is deterministic under any scheduling.
    pub fn map_partitions_with_index<U, F>(&self, label: &str, f: F) -> Rdd<'a, U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        self.charge_spill();
        let f = &f;
        let tasks: Vec<_> = self
            .snapshot()
            .into_iter()
            .enumerate()
            .map(|(idx, p)| move || f(idx, &p))
            .collect();
        let outputs = self.cluster.run_stage(self.stage_options(label), tasks);
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            storage: Storage::Plain(outputs.into_iter().map(Arc::new).collect()),
            spill_bytes: 0,
        }
    }

    /// Element-wise map.
    pub fn map<U, F>(&self, label: &str, f: F) -> Rdd<'a, U>
    where
        U: Send + Sync,
        F: Fn(&T) -> U + Sync,
    {
        self.map_partitions(label, |part| part.iter().map(&f).collect())
    }

    /// Keeps the elements satisfying the predicate.
    pub fn filter<F>(&self, label: &str, f: F) -> Rdd<'a, T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        self.map_partitions(label, |part| part.iter().filter(|t| f(t)).cloned().collect())
    }

    /// Accumulator-style aggregation (Spark `aggregate` / the paper's
    /// Algorithm 5 accumulators): each task folds its partition into a
    /// fresh local value (`init` + `fold`), then the per-task partials —
    /// and only those — cross the network to the driver, where `merge`
    /// combines them.
    ///
    /// Returns the merged value together with the number of accumulator
    /// bytes that travelled, so callers can report it (sPCA's 131 MB of
    /// intermediate data on Tweets is exactly this number).
    pub fn aggregate<A, FI, FF, FM>(
        &self,
        label: &str,
        init: FI,
        fold: FF,
        merge: FM,
    ) -> (A, u64)
    where
        A: Send + Wire,
        FI: Fn() -> A + Sync,
        FF: Fn(&mut A, &T) + Sync,
        FM: Fn(&mut A, A),
    {
        self.charge_spill();
        let init = &init;
        let fold = &fold;
        let tasks: Vec<_> = self
            .snapshot()
            .into_iter()
            .map(|p| {
                move || {
                    let mut acc = init();
                    for t in p.iter() {
                        fold(&mut acc, t);
                    }
                    acc
                }
            })
            .collect();
        let partials = self.cluster.run_stage(self.stage_options(label), tasks);
        self.reduce_partials(partials, init, merge)
    }

    /// Partition-at-a-time aggregation: like [`Self::aggregate`], but each
    /// task hands its *whole partition slice* to `fold_part` instead of
    /// folding element by element. This is the entry point of the batched
    /// EM path — the fold can assemble the slice into a block and run the
    /// blocked kernels over it, instead of paying per-row dispatch.
    pub fn aggregate_partitions<A, FI, FF, FM>(
        &self,
        label: &str,
        init: FI,
        fold_part: FF,
        merge: FM,
    ) -> (A, u64)
    where
        A: Send + Wire,
        FI: Fn() -> A + Sync,
        FF: Fn(&mut A, &[T]) + Sync,
        FM: Fn(&mut A, A),
    {
        self.charge_spill();
        let init = &init;
        let fold_part = &fold_part;
        let tasks: Vec<_> = self
            .snapshot()
            .into_iter()
            .map(|p| {
                move || {
                    let mut acc = init();
                    fold_part(&mut acc, &p);
                    acc
                }
            })
            .collect();
        let partials = self.cluster.run_stage(self.stage_options(label), tasks);
        self.reduce_partials(partials, init, merge)
    }

    /// Driver-side reduction shared by the two aggregates: charge the
    /// accumulator bytes, then [`tree_merge`] the partials (pairwise rounds
    /// — a function of the partition count only, so any worker count
    /// produces the same result).
    ///
    /// Partial accumulators are shuffle-family records, so they are priced
    /// under the cluster's negotiated wire codec — the one charge site in
    /// sparkle where the v3 fast path applies. Collects, broadcasts and
    /// persisted partitions stay on exact v2 pricing.
    fn reduce_partials<A, FI, FM>(&self, partials: Vec<A>, init: FI, merge: FM) -> (A, u64)
    where
        A: Wire,
        FI: Fn() -> A,
        FM: Fn(&mut A, A),
    {
        // Per-partition sizes feed the contended timing model as one flow
        // per partition endpoint (partition p lives on node p % nodes);
        // the byte meter still charges their sum.
        let sizes: Vec<u64> = partials.iter().map(|p| self.cluster.shuffle_size(p)).collect();
        let bytes: u64 = sizes.iter().sum();
        self.cluster.charge_network_flows(&sizes, "accumulator-merge");
        if obs::enabled() {
            self.cluster.registry().counter("sparkle.accumulator_bytes").add(bytes);
        }
        (tree_merge(partials, init, merge), bytes)
    }

    /// Copies every element to the driver, charging the transfer.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone + Wire,
    {
        self.charge_spill();
        let mut out = Vec::with_capacity(self.count());
        // One flow per partition endpoint for the contended timing model;
        // the byte meter charges the per-partition sum as before.
        let mut sizes = Vec::new();
        for p in self.snapshot() {
            sizes.push(p.iter().map(|t| self.cluster.wire_size(t)).sum());
            out.extend(p.iter().cloned());
        }
        self.cluster.charge_network_flows(&sizes, "collect");
        out
    }

    /// Marks the RDD as cached and accounts for the fraction that does not
    /// fit in the cluster's aggregate memory: that spill is re-read from
    /// disk by every subsequent stage over this RDD. Returns the dataset's
    /// size in bytes.
    ///
    /// This is the paper's point that sPCA's small footprint "allows for
    /// the analysis of much larger datasets in the limited aggregate memory
    /// of the cluster".
    pub fn persist(&mut self) -> u64
    where
        T: Wire,
    {
        let total = match &self.storage {
            Storage::Plain(parts) => parts
                .iter()
                .map(|p| p.iter().map(|t| self.cluster.wire_size(t)).sum::<u64>())
                .sum(),
            Storage::Cached(c) => c.total_bytes,
        };
        let memory = self.cluster.config().total_memory();
        self.spill_bytes = total.saturating_sub(memory);
        total
    }

    /// [`Self::persist`] plus fault tolerance: registers the cached blocks
    /// with the cluster's fault domain (cached partition `p` lives on node
    /// `p % nodes`) and keeps `lineage` so that partitions dropped by a
    /// node crash are recomputed — not silently kept — before the next
    /// stage reads them. Returns the dataset's size in bytes.
    pub fn persist_with_lineage(&mut self, lineage: Lineage<'a, T>) -> u64
    where
        T: Wire,
    {
        let parts = match &self.storage {
            Storage::Plain(parts) => parts.clone(),
            // Re-persisting a cached RDD keeps the existing registration.
            Storage::Cached(c) => return c.total_bytes,
        };
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let total: u64 = parts
            .iter()
            .map(|p| p.iter().map(|t| self.cluster.wire_size(t)).sum::<u64>())
            .sum();
        self.spill_bytes = total.saturating_sub(self.cluster.config().total_memory());
        let id = self.cluster.register_cache(parts.len());
        self.storage = Storage::Cached(Arc::new(CachedStorage {
            id,
            sizes,
            total_bytes: total,
            lineage,
            slots: Mutex::new(parts),
        }));
        total
    }

    /// The fault-domain cache id, if this RDD is persisted with lineage.
    pub fn cache_id(&self) -> Option<u64> {
        match &self.storage {
            Storage::Plain(_) => None,
            Storage::Cached(c) => Some(c.id),
        }
    }

    /// Spill bytes charged per stage (0 if the dataset fits in memory).
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Concatenates two RDDs on the same cluster (partition lists are
    /// appended; no data moves).
    pub fn union(&self, other: &Rdd<'a, T>) -> Rdd<'a, T> {
        assert!(
            std::ptr::eq(self.cluster, other.cluster),
            "union: RDDs live on different clusters"
        );
        let mut partitions = self.snapshot();
        partitions.extend(other.snapshot());
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            storage: Storage::Plain(partitions),
            spill_bytes: self.spill_bytes + other.spill_bytes,
        }
    }

    /// Bernoulli sample of the elements with probability `fraction`,
    /// seeded — the primitive behind sPCA-SG's warm-up sample.
    pub fn sample(&self, label: &str, fraction: f64, seed: u64) -> Rdd<'a, T>
    where
        T: Clone,
    {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be a probability");
        // One independent stream per partition, seeded from the partition's
        // *layout* index — not from a shared counter bumped during parallel
        // execution, whose value would depend on task scheduling order.
        self.map_partitions_with_index(label, move |pidx, part| {
            let mut rng = linalg::Prng::seed_from_u64(seed ^ ((pidx as u64).wrapping_mul(0x9e37)));
            part.iter().filter(|_| rng.uniform() < fraction).cloned().collect()
        })
    }

    /// Zips two RDDs with identical partitioning, partition by partition
    /// (Spark's `zipPartitions`) — the join pattern Mahout's Bt job uses
    /// to align `Q` rows with input rows.
    pub fn zip_partitions<U, V, F>(&self, label: &str, other: &Rdd<'a, U>, f: F) -> Rdd<'a, V>
    where
        U: Send + Sync,
        V: Send + Sync,
        F: Fn(&[T], &[U]) -> Vec<V> + Sync,
    {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip_partitions: partition counts differ"
        );
        self.charge_spill();
        other.charge_spill();
        let f = &f;
        let tasks: Vec<_> = self
            .snapshot()
            .into_iter()
            .zip(other.snapshot())
            .map(|(a, b)| move || f(&a, &b))
            .collect();
        let outputs = self.cluster.run_stage(self.stage_options(label), tasks);
        Rdd {
            cluster: self.cluster,
            task_overhead_secs: self.task_overhead_secs,
            storage: Storage::Plain(outputs.into_iter().map(Arc::new).collect()),
            spill_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SparkleContext;
    use dcluster::ClusterConfig;

    fn cluster() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    #[test]
    fn map_and_collect_roundtrip() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..100).collect(), 8);
        let doubled = rdd.map("double", |x| x * 2);
        let out = doubled.collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn filter_keeps_matching() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..20).collect(), 3);
        let evens = rdd.filter("evens", |x| x % 2 == 0);
        assert_eq!(evens.count(), 10);
    }

    #[test]
    fn aggregate_sums_partials_and_charges_network() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((1_u64..=100).collect(), 4);
        let (sum, bytes) = rdd.aggregate(
            "sum",
            || 0_u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(sum, 5050);
        // 4 u64 partials (325, 950, 1575, 2200), each a 2-byte varint.
        assert_eq!(bytes, 8);
        assert_eq!(c.metrics().network_bytes, 8);
    }

    #[test]
    fn aggregate_charges_legacy_bytes_under_estimated_sizing() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_estimated_sizes());
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((1_u64..=100).collect(), 4);
        let (sum, bytes) =
            rdd.aggregate("sum", || 0_u64, |acc, x| *acc += x, |acc, other| *acc += other);
        assert_eq!(sum, 5050);
        // Legacy flat estimate: 4 partials of 8 bytes each.
        assert_eq!(bytes, 32);
        assert_eq!(c.metrics().network_bytes, 32);
    }

    #[test]
    fn aggregate_of_empty_rdd_returns_init() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize(Vec::<u64>::new(), 2);
        let (sum, _) = rdd.aggregate("sum", || 7_u64, |a, x| *a += x, |a, b| *a += b);
        assert_eq!(sum, 7 + 7, "two empty partials merge into init+init");
    }

    #[test]
    fn collect_charges_transfer_bytes() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..10).collect(), 2);
        let _ = rdd.collect();
        // Each u64 in 0..10 encodes to a 1-byte varint.
        assert_eq!(c.metrics().network_bytes, 10);
    }

    #[test]
    fn persist_detects_oversized_dataset_and_charges_spill() {
        let small = SimCluster::new(
            ClusterConfig::paper_cluster().with_nodes(1).with_memory_per_node(100),
        );
        let ctx = SparkleContext::new(&small);
        // 50 f64 elements encode to 8 B each: 400 B total.
        let mut rdd = ctx.parallelize((0..50).map(|x| x as f64).collect(), 2);
        let total = rdd.persist();
        assert_eq!(total, 400);
        assert_eq!(rdd.spill_bytes(), 300);
        let before = small.metrics().dfs_bytes_read;
        let _ = rdd.map("touch", |x| *x);
        assert_eq!(small.metrics().dfs_bytes_read - before, 300);
    }

    #[test]
    fn persist_fits_in_memory_means_no_spill() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let mut rdd = ctx.parallelize((0_u64..50).collect(), 2);
        rdd.persist();
        assert_eq!(rdd.spill_bytes(), 0);
        let _ = rdd.map("touch", |x| *x);
        assert_eq!(c.metrics().dfs_bytes_read, 0);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..12).collect(), 3);
        let sums = rdd.map_partitions("psum", |part| vec![part.iter().sum::<u64>()]);
        assert_eq!(sums.count(), 3);
        let total: u64 = sums.collect().iter().sum();
        assert_eq!(total, 66);
    }

    #[test]
    fn union_concatenates_partitions() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let a = ctx.parallelize((0_u64..5).collect(), 2);
        let b = ctx.parallelize((5_u64..8).collect(), 1);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect(), (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn sample_is_seeded_and_roughly_proportional() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..10_000).collect(), 4);
        let s1 = rdd.sample("s", 0.2, 9);
        let s2 = rdd.sample("s", 0.2, 9);
        assert_eq!(s1.collect(), s2.collect(), "same seed, same sample");
        let count = s1.count() as f64;
        assert!((count / 10_000.0 - 0.2).abs() < 0.03, "got fraction {}", count / 10_000.0);
        let s3 = rdd.sample("s", 0.2, 10);
        assert_ne!(s1.collect(), s3.collect(), "different seed, different sample");
    }

    #[test]
    fn tree_merge_covers_every_count() {
        assert_eq!(tree_merge(Vec::<u64>::new(), || 9, |a, b| *a += b), 9);
        for n in 1..=17u64 {
            let parts: Vec<u64> = (1..=n).collect();
            assert_eq!(tree_merge(parts, || 0, |a, b| *a += b), n * (n + 1) / 2);
        }
        // The merge structure depends only on the count: pairwise rounds.
        let order = std::cell::RefCell::new(Vec::new());
        let _ = tree_merge(
            vec!["a".to_string(), "b".into(), "c".into(), "d".into(), "e".into()],
            String::new,
            |a, b| {
                order.borrow_mut().push(format!("{a}+{b}"));
                a.push_str(&b);
            },
        );
        assert_eq!(
            order.into_inner(),
            vec!["a+b", "c+d", "ab+cd", "abcd+e"],
            "fixed pairwise rounds"
        );
    }

    #[test]
    fn map_partitions_with_index_sees_layout_index() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.from_partitions(vec![vec![10_u64], vec![20, 21], vec![30]]);
        let tagged = rdd.map_partitions_with_index("tag", |idx, part| {
            part.iter().map(|x| (idx as u64, *x)).collect::<Vec<_>>()
        });
        assert_eq!(tagged.collect(), vec![(0, 10), (1, 20), (1, 21), (2, 30)]);
    }

    #[test]
    fn sample_is_identical_across_worker_counts() {
        use linalg::WorkerPool;
        let run_with = |workers: usize| {
            let c = SimCluster::new_with_pool(
                ClusterConfig::paper_cluster(),
                Arc::new(WorkerPool::new(workers)),
            );
            let ctx = SparkleContext::new(&c);
            let rdd = ctx.parallelize((0_u64..5_000).collect(), 7);
            let out = rdd.sample("s", 0.3, 42).collect();
            out
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2), "1 vs 2 workers");
        assert_eq!(one, run_with(8), "1 vs 8 workers");
    }

    #[test]
    fn aggregate_partitions_matches_elementwise_aggregate() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((1_u64..=100).collect(), 5);
        let (by_elem, bytes_elem) =
            rdd.aggregate("sum", || 0_u64, |a, x| *a += x, |a, b| *a += b);
        let (by_part, bytes_part) = rdd.aggregate_partitions(
            "psum",
            || 0_u64,
            |a, part| *a += part.iter().sum::<u64>(),
            |a, b| *a += b,
        );
        assert_eq!(by_elem, by_part);
        assert_eq!(bytes_elem, bytes_part, "same partial count, same accumulator bytes");
    }

    #[test]
    fn zip_partitions_aligns_by_partition() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let a = ctx.from_partitions(vec![vec![1_u64, 2], vec![3]]);
        let b = ctx.from_partitions(vec![vec![10_u64, 20], vec![30]]);
        let z = a.zip_partitions("zip", &b, |xs, ys| {
            xs.iter().zip(ys).map(|(x, y)| x + y).collect::<Vec<u64>>()
        });
        assert_eq!(z.collect(), vec![11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "partition counts differ")]
    fn zip_partitions_rejects_mismatched_layout() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let a = ctx.parallelize((0_u64..4).collect(), 2);
        let b = ctx.parallelize((0_u64..4).collect(), 4);
        let _ = a.zip_partitions("zip", &b, |x, _| x.to_vec());
    }

    #[test]
    fn lineage_recomputes_lost_partitions_exactly() {
        use dcluster::{FaultPlan, FaultSpec, RecoveryEvent};
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_nodes(2));
        let ctx = SparkleContext::new(&c);
        let source: Vec<u64> = (0..40).collect();
        let mut rdd = ctx.parallelize(source.clone(), 8);
        let layout = rdd.partition_sizes();
        let src = source.clone();
        rdd.persist_with_lineage(Lineage::new(
            vec!["parallelize".into()],
            Box::new(move |pidx| {
                let start: usize = layout[..pidx].iter().sum();
                src[start..start + layout[pidx]].to_vec()
            }),
        ));
        let before = rdd.map("sum", |x| *x).collect();

        // Crash node 1: cached partitions 1,3,5,7 drop; the next stage
        // must heal them from lineage and read identical data.
        c.install_fault_plan(FaultSpec::new(0), FaultPlan::new().with_crash(1, c.next_stage_index())).unwrap();
        let _ = c.run_stage(StageOptions::new("tick"), vec![|| ()]);
        let after = rdd.map("sum", |x| *x).collect();
        assert_eq!(before, after, "recomputed partitions must be identical");

        let recomputed: Vec<usize> = c
            .recovery_log()
            .iter()
            .filter_map(|e| match e {
                RecoveryEvent::PartitionRecomputed { partition, .. } => Some(*partition),
                _ => None,
            })
            .collect();
        assert_eq!(recomputed, vec![1, 3, 5, 7], "node 1 of 2 owns the odd partitions");
        assert!(c.registry().counter("faults.partitions_recomputed").get() >= 4);
    }

    #[test]
    fn lineage_source_share_is_charged_on_recompute() {
        use dcluster::{FaultPlan, FaultSpec};
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_nodes(2));
        c.dfs().seed(&c, "input", 8_000);
        let ctx = SparkleContext::new(&c);
        let mut rdd = ctx.parallelize((0_u64..16).collect(), 4);
        rdd.persist_with_lineage(
            Lineage::new(vec!["read".into()], Box::new(|pidx| {
                (pidx as u64 * 4..pidx as u64 * 4 + 4).collect()
            }))
            .with_source("input"),
        );
        c.install_fault_plan(FaultSpec::new(0), FaultPlan::new().with_crash(0, c.next_stage_index())).unwrap();
        let _ = c.run_stage(StageOptions::new("tick"), vec![|| ()]);
        let read_before = c.metrics().dfs_bytes_read;
        let _ = rdd.map("touch", |x| *x);
        // Node 0 owns partitions 0 and 2: two recomputes x 2000 B share.
        assert_eq!(c.metrics().dfs_bytes_read - read_before, 4_000);
    }

    #[test]
    fn unharmed_cache_is_never_recomputed() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let mut rdd = ctx.parallelize((0_u64..16).collect(), 4);
        rdd.persist_with_lineage(Lineage::new(
            vec!["x".into()],
            Box::new(|_| panic!("no partition was lost — recompute must not run")),
        ));
        assert_eq!(rdd.map("touch", |x| *x + 1).count(), 16);
        assert!(rdd.cache_id().is_some());
    }

    #[test]
    fn stages_are_recorded_with_labels() {
        let c = cluster();
        let ctx = SparkleContext::new(&c);
        let rdd = ctx.parallelize((0_u64..4).collect(), 2);
        let _ = rdd.map("step-one", |x| x + 1).map("step-two", |x| x * 2);
        let labels: Vec<String> = c.metrics().stages.iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels, vec!["step-one".to_string(), "step-two".to_string()]);
    }
}
