//! Job definition: the user-facing mapper/combiner/reducer traits.

use std::collections::BTreeMap;

use linalg::wire::{Sizing, WireCodec};
use linalg::Wire;

/// How many buffered records trigger an in-memory spill-combine.
///
/// Hadoop mappers don't hold their full output in memory either: the
/// output buffer is combined and spilled when it fills. The emitted byte
/// and record counters are unaffected — they meter what the mapper
/// *produced*, which is what the paper's intermediate-data numbers count.
const SPILL_THRESHOLD: usize = 65_536;

type CombineFn<'a, K, V> = &'a dyn Fn(&K, Vec<V>) -> Vec<V>;

/// Collects the `(key, value)` pairs a mapper emits and meters their wire
/// size at emission time — the "map output bytes" Hadoop counter. Sizes
/// are real `wire` encoded lengths (or the legacy `ByteSized` estimate,
/// per the cluster's [`Sizing`] policy), priced under the cluster's
/// negotiated shuffle [`WireCodec`]: map output is shuffle-family data, so
/// the v3 fast path applies here (input splits and DFS blocks stay exact
/// v2).
pub struct Emitter<'a, K, V> {
    pairs: Vec<(K, V)>,
    bytes: u64,
    records: usize,
    combiner: Option<CombineFn<'a, K, V>>,
    sizing: Sizing,
    codec: WireCodec,
}

impl<K: Wire + Ord + Clone, V: Wire> Emitter<'_, K, V> {
    /// Creates an empty emitter with no spill combining, metering encoded
    /// sizes.
    pub fn new() -> Self {
        Emitter {
            pairs: Vec::new(),
            bytes: 0,
            records: 0,
            combiner: None,
            sizing: Sizing::Encoded,
            codec: WireCodec::V2,
        }
    }

    /// Creates an emitter that compacts its buffer through `combiner`
    /// whenever it exceeds the spill threshold (what the engine uses).
    pub fn with_combiner(combiner: CombineFn<'_, K, V>) -> Emitter<'_, K, V> {
        Emitter {
            pairs: Vec::new(),
            bytes: 0,
            records: 0,
            combiner: Some(combiner),
            sizing: Sizing::Encoded,
            codec: WireCodec::V2,
        }
    }

    /// Builder-style override of the byte-sizing policy (the engine passes
    /// its cluster's).
    pub fn with_sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Builder-style override of the shuffle codec (the engine passes its
    /// cluster's negotiated one).
    pub fn with_codec(mut self, codec: WireCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Emits one pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.bytes += self.codec.shuffle_size_of(self.sizing, &key)
            + self.codec.shuffle_size_of(self.sizing, &value);
        self.records += 1;
        self.pairs.push((key, value));
        if self.combiner.is_some() && self.pairs.len() >= SPILL_THRESHOLD {
            self.compact();
        }
    }

    /// Total bytes emitted so far (pre-combine).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records emitted so far (pre-combine).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Spill-combine the buffered pairs in place.
    fn compact(&mut self) {
        let Some(combiner) = self.combiner else { return };
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (k, v) in self.pairs.drain(..) {
            grouped.entry(k).or_default().push(v);
        }
        for (k, vs) in grouped {
            for v in combiner(&k, vs) {
                self.pairs.push((k.clone(), v));
            }
        }
    }

    /// Consumes the emitter, returning (possibly spill-combined) pairs and
    /// the pre-combine byte/record counters.
    pub(crate) fn into_parts(self) -> (Vec<(K, V)>, u64, usize) {
        (self.pairs, self.bytes, self.records)
    }
}

impl<K: Wire + Ord + Clone, V: Wire> Default for Emitter<'_, K, V> {
    fn default() -> Self {
        Emitter::new()
    }
}

/// A MapReduce job over row-partitioned input.
///
/// Implementations are shared read-only across map tasks (`Sync`); any
/// broadcast state — the paper's in-memory `CM` matrix, the mean vector —
/// lives in the job struct, mirroring Hadoop's distributed-cache pattern.
pub trait MapReduceJob: Sync {
    /// One input partition (e.g. a block of matrix rows). `Wire` so the
    /// engine knows how many HDFS bytes a crashed task's re-execution
    /// must re-read (MapReduce's recovery path: inputs are materialized,
    /// failed tasks restart against their split).
    type Input: Sync + Wire;
    /// Shuffle key. `Ord + Clone` because Hadoop sorts keys between map
    /// and reduce (and spills re-insert combined pairs).
    type Key: Ord + Clone + Send + Wire;
    /// Shuffle value.
    type Value: Send + Wire;
    /// Per-key reducer output.
    type Output: Send;

    /// Processes one partition, emitting intermediate pairs.
    ///
    /// Emit per record for a Mahout-style mapper; accumulate in locals and
    /// emit once at the end for the paper's stateful-combiner pattern.
    fn map(&self, partition: &Self::Input, emitter: &mut Emitter<'_, Self::Key, Self::Value>);

    /// Per-mapper combiner: folds this mapper's values for one key before
    /// the shuffle. The default keeps the values as-is (no combiner).
    fn combine(&self, _key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        values
    }

    /// Reduces all (post-combine) values for one key into an output.
    fn reduce(&self, key: Self::Key, values: Vec<Self::Value>) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_counts_encoded_bytes_and_records() {
        let mut e: Emitter<'_, u32, f64> = Emitter::new();
        assert_eq!(e.bytes(), 0);
        e.emit(1, 2.0);
        e.emit(2, 3.0);
        assert_eq!(e.records(), 2);
        // Encoded: 1-byte varint key + 8-byte raw f64 value.
        assert_eq!(e.bytes(), 2 * (1 + 8));
        let (pairs, bytes, records) = e.into_parts();
        assert_eq!(pairs, vec![(1, 2.0), (2, 3.0)]);
        assert_eq!(bytes, 18);
        assert_eq!(records, 2);
    }

    #[test]
    fn emitter_charges_what_encode_produces() {
        let mut e: Emitter<'_, u32, Vec<f64>> = Emitter::new();
        let (k, v) = (300u32, vec![1.5, -0.0, f64::NAN]);
        let expect = (k.encode().len() + v.encode().len()) as u64;
        e.emit(k, v);
        assert_eq!(e.bytes(), expect);
    }

    #[test]
    fn estimated_sizing_restores_legacy_arithmetic() {
        let mut e: Emitter<'_, u32, f64> =
            Emitter::new().with_sizing(Sizing::Estimated);
        e.emit(1, 2.0);
        e.emit(2, 3.0);
        // Legacy flat estimate: 4-byte key + 8-byte value.
        assert_eq!(e.bytes(), 2 * (4 + 8));
    }

    #[test]
    fn spill_combine_bounds_memory_but_not_counters() {
        let combine = |_k: &u32, vs: Vec<f64>| vec![vs.iter().sum::<f64>()];
        let mut e = Emitter::with_combiner(&combine);
        let n = SPILL_THRESHOLD * 2 + 10;
        for i in 0..n {
            e.emit((i % 3) as u32, 1.0);
        }
        // Counters reflect every emission (keys 0..3 are 1-byte varints)…
        assert_eq!(e.records(), n);
        assert_eq!(e.bytes(), (n as u64) * 9);
        // …but the buffer was compacted down to a few combined pairs.
        let (pairs, _, _) = e.into_parts();
        assert!(pairs.len() < SPILL_THRESHOLD, "buffer was not compacted: {}", pairs.len());
        let total: f64 = pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(total, n as f64);
    }
}
