//! Job definition: the user-facing mapper/combiner/reducer traits.

use std::collections::BTreeMap;

use linalg::bytes::ByteSized;

/// How many buffered records trigger an in-memory spill-combine.
///
/// Hadoop mappers don't hold their full output in memory either: the
/// output buffer is combined and spilled when it fills. The emitted byte
/// and record counters are unaffected — they meter what the mapper
/// *produced*, which is what the paper's intermediate-data numbers count.
const SPILL_THRESHOLD: usize = 65_536;

type CombineFn<'a, K, V> = &'a dyn Fn(&K, Vec<V>) -> Vec<V>;

/// Collects the `(key, value)` pairs a mapper emits and meters their wire
/// size at emission time — the "map output bytes" Hadoop counter.
pub struct Emitter<'a, K, V> {
    pairs: Vec<(K, V)>,
    bytes: u64,
    records: usize,
    combiner: Option<CombineFn<'a, K, V>>,
}

impl<K: ByteSized + Ord + Clone, V: ByteSized> Emitter<'_, K, V> {
    /// Creates an empty emitter with no spill combining.
    pub fn new() -> Self {
        Emitter { pairs: Vec::new(), bytes: 0, records: 0, combiner: None }
    }

    /// Creates an emitter that compacts its buffer through `combiner`
    /// whenever it exceeds the spill threshold (what the engine uses).
    pub fn with_combiner(combiner: CombineFn<'_, K, V>) -> Emitter<'_, K, V> {
        Emitter { pairs: Vec::new(), bytes: 0, records: 0, combiner: Some(combiner) }
    }

    /// Emits one pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.bytes += key.size_bytes() + value.size_bytes();
        self.records += 1;
        self.pairs.push((key, value));
        if self.combiner.is_some() && self.pairs.len() >= SPILL_THRESHOLD {
            self.compact();
        }
    }

    /// Total bytes emitted so far (pre-combine).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records emitted so far (pre-combine).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Spill-combine the buffered pairs in place.
    fn compact(&mut self) {
        let Some(combiner) = self.combiner else { return };
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (k, v) in self.pairs.drain(..) {
            grouped.entry(k).or_default().push(v);
        }
        for (k, vs) in grouped {
            for v in combiner(&k, vs) {
                self.pairs.push((k.clone(), v));
            }
        }
    }

    /// Consumes the emitter, returning (possibly spill-combined) pairs and
    /// the pre-combine byte/record counters.
    pub(crate) fn into_parts(self) -> (Vec<(K, V)>, u64, usize) {
        (self.pairs, self.bytes, self.records)
    }
}

impl<K: ByteSized + Ord + Clone, V: ByteSized> Default for Emitter<'_, K, V> {
    fn default() -> Self {
        Emitter::new()
    }
}

/// A MapReduce job over row-partitioned input.
///
/// Implementations are shared read-only across map tasks (`Sync`); any
/// broadcast state — the paper's in-memory `CM` matrix, the mean vector —
/// lives in the job struct, mirroring Hadoop's distributed-cache pattern.
pub trait MapReduceJob: Sync {
    /// One input partition (e.g. a block of matrix rows). `ByteSized` so
    /// the engine knows how many HDFS bytes a crashed task's re-execution
    /// must re-read (MapReduce's recovery path: inputs are materialized,
    /// failed tasks restart against their split).
    type Input: Sync + ByteSized;
    /// Shuffle key. `Ord + Clone` because Hadoop sorts keys between map
    /// and reduce (and spills re-insert combined pairs).
    type Key: Ord + Clone + Send + ByteSized;
    /// Shuffle value.
    type Value: Send + ByteSized;
    /// Per-key reducer output.
    type Output: Send;

    /// Processes one partition, emitting intermediate pairs.
    ///
    /// Emit per record for a Mahout-style mapper; accumulate in locals and
    /// emit once at the end for the paper's stateful-combiner pattern.
    fn map(&self, partition: &Self::Input, emitter: &mut Emitter<'_, Self::Key, Self::Value>);

    /// Per-mapper combiner: folds this mapper's values for one key before
    /// the shuffle. The default keeps the values as-is (no combiner).
    fn combine(&self, _key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        values
    }

    /// Reduces all (post-combine) values for one key into an output.
    fn reduce(&self, key: Self::Key, values: Vec<Self::Value>) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_counts_bytes_and_records() {
        let mut e: Emitter<'_, u32, f64> = Emitter::new();
        assert_eq!(e.bytes(), 0);
        e.emit(1, 2.0);
        e.emit(2, 3.0);
        assert_eq!(e.records(), 2);
        assert_eq!(e.bytes(), 2 * (4 + 8));
        let (pairs, bytes, records) = e.into_parts();
        assert_eq!(pairs, vec![(1, 2.0), (2, 3.0)]);
        assert_eq!(bytes, 24);
        assert_eq!(records, 2);
    }

    #[test]
    fn spill_combine_bounds_memory_but_not_counters() {
        let combine = |_k: &u32, vs: Vec<f64>| vec![vs.iter().sum::<f64>()];
        let mut e = Emitter::with_combiner(&combine);
        let n = SPILL_THRESHOLD * 2 + 10;
        for i in 0..n {
            e.emit((i % 3) as u32, 1.0);
        }
        // Counters reflect every emission…
        assert_eq!(e.records(), n);
        assert_eq!(e.bytes(), (n as u64) * 12);
        // …but the buffer was compacted down to a few combined pairs.
        let (pairs, _, _) = e.into_parts();
        assert!(pairs.len() < SPILL_THRESHOLD, "buffer was not compacted: {}", pairs.len());
        let total: f64 = pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(total, n as f64);
    }
}
