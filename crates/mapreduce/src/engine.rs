//! Job execution: map stage, combine, shuffle, reduce stage.

use std::collections::BTreeMap;

use dcluster::{SimCluster, StageOptions};

use crate::job::{Emitter, MapReduceJob};

/// Per-job byte and record counters (the Hadoop counters the paper quotes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobStats {
    /// Bytes emitted by mappers before combining ("map output bytes") —
    /// charged to the simulated local disk as the spill.
    pub map_emit_bytes: u64,
    /// Records emitted by mappers before combining.
    pub map_emit_records: usize,
    /// Bytes crossing the network after per-mapper combining.
    pub shuffle_bytes: u64,
    /// Number of distinct shuffle keys.
    pub distinct_keys: usize,
}

/// Sorted `(key, output)` pairs a job produces.
pub type JobOutput<J> =
    Vec<(<J as MapReduceJob>::Key, <J as MapReduceJob>::Output)>;

/// A reducer's slice of grouped key/value lists.
type ReduceChunk<J> =
    Vec<(<J as MapReduceJob>::Key, Vec<<J as MapReduceJob>::Value>)>;

/// Executes [`MapReduceJob`]s on a simulated cluster with Hadoop-flavoured
/// overheads.
#[derive(Debug, Clone, Copy)]
pub struct MapReduceEngine<'a> {
    cluster: &'a SimCluster,
    /// Flat virtual job-initialization cost (Hadoop: several seconds).
    job_overhead_secs: f64,
    /// Per-task virtual slot launch cost.
    task_overhead_secs: f64,
}

impl<'a> MapReduceEngine<'a> {
    /// Engine with Hadoop-like default overheads (6 s per job, 1 s per
    /// task), the regime in which the paper observes "the overheads of the
    /// Hadoop framework and job initialization have a larger relative
    /// impact in the smaller case".
    pub fn new(cluster: &'a SimCluster) -> Self {
        MapReduceEngine { cluster, job_overhead_secs: 6.0, task_overhead_secs: 1.0 }
    }

    /// Overrides both overhead knobs.
    pub fn with_overheads(mut self, job_secs: f64, task_secs: f64) -> Self {
        self.job_overhead_secs = job_secs;
        self.task_overhead_secs = task_secs;
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &'a SimCluster {
        self.cluster
    }

    /// Runs a job over row partitions with the given reduce parallelism.
    /// Outputs come back sorted by key (as Hadoop delivers them).
    pub fn run_job<J: MapReduceJob>(
        &self,
        name: &str,
        job: &J,
        partitions: &[J::Input],
        reducers: usize,
    ) -> (JobOutput<J>, JobStats) {
        assert!(reducers > 0, "run_job: need at least one reducer");
        if obs::enabled() {
            self.cluster.trace_begin(
                "job",
                &format!("job:{name}"),
                vec![("partitions", (partitions.len() as u64).into())],
            );
        }
        self.cluster.advance_time_labeled(self.job_overhead_secs, "job-init");
        // Byte meters price records under the cluster's sizing policy:
        // real encoded lengths by default. Shuffle-family records (map
        // emits, spills, the shuffle itself) additionally go through the
        // negotiated wire codec; input splits stay exact v2.
        let sizing = self.cluster.sizing();
        let codec = self.cluster.wire_codec();

        // ---- Map stage (with per-mapper combine, inside the timed task).
        type MapOut<K, V> = (Vec<(K, V)>, u64, usize);
        let map_tasks: Vec<_> = partitions
            .iter()
            .map(|p| {
                move || -> MapOut<J::Key, J::Value> {
                    let combiner = |k: &J::Key, vs: Vec<J::Value>| job.combine(k, vs);
                    let mut emitter =
                        Emitter::with_combiner(&combiner).with_sizing(sizing).with_codec(codec);
                    job.map(p, &mut emitter);
                    let (pairs, bytes, records) = emitter.into_parts();
                    // Per-mapper grouping + combine.
                    let mut grouped: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
                    for (k, v) in pairs {
                        grouped.entry(k).or_default().push(v);
                    }
                    let mut combined = Vec::new();
                    for (k, vs) in grouped {
                        for v in job.combine(&k, vs) {
                            combined.push((k.clone(), v));
                        }
                    }
                    (combined, bytes, records)
                }
            })
            .collect();
        // Recovery sizing: a map task killed by a node crash re-reads its
        // HDFS split (MapReduce's recovery path — inputs are materialized,
        // unlike Spark's recompute-from-lineage).
        let input_bytes: u64 = partitions.iter().map(|p| sizing.size_of(p)).sum();
        let map_reexec_bytes = input_bytes / partitions.len().max(1) as u64;
        let map_outputs = self.cluster.run_stage(
            StageOptions::new(format!("{name}/map"))
                .with_task_overhead(self.task_overhead_secs)
                .with_reexec_read_bytes(map_reexec_bytes),
            map_tasks,
        );

        let mut stats = JobStats::default();
        let mut all_pairs: Vec<(J::Key, J::Value)> = Vec::new();
        // Per-mapper byte counts feed the contended timing model as one
        // flow per mapper endpoint (mapper m spills to node m % nodes's
        // disk and ships through its link); totals meter as before.
        let mut spill_sizes = Vec::with_capacity(map_outputs.len());
        let mut shuffle_sizes = Vec::with_capacity(map_outputs.len());
        for (pairs, bytes, records) in map_outputs {
            stats.map_emit_bytes += bytes;
            stats.map_emit_records += records;
            let mapper_shuffle = pairs
                .iter()
                .map(|(k, v)| {
                    codec.shuffle_size_of(sizing, k) + codec.shuffle_size_of(sizing, v)
                })
                .sum::<u64>();
            stats.shuffle_bytes += mapper_shuffle;
            spill_sizes.push(bytes);
            shuffle_sizes.push(mapper_shuffle);
            all_pairs.extend(pairs);
        }
        // Mapper spill to local disk at pre-combine size; shuffle over the
        // network at post-combine size.
        self.cluster.charge_dfs_write_flows(&spill_sizes, "map-spill");
        self.cluster.charge_network_flows(&shuffle_sizes, "shuffle");

        // ---- Sort & group (Hadoop's merge sort).
        let mut grouped: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
        for (k, v) in all_pairs {
            grouped.entry(k).or_default().push(v);
        }
        stats.distinct_keys = grouped.len();

        // ---- Reduce stage: contiguous key ranges per reducer.
        let entries: Vec<(J::Key, Vec<J::Value>)> = grouped.into_iter().collect();
        let chunk = entries.len().div_ceil(reducers).max(1);
        let mut chunks: Vec<ReduceChunk<J>> = Vec::new();
        let mut it = entries.into_iter().peekable();
        while it.peek().is_some() {
            chunks.push(it.by_ref().take(chunk).collect());
        }
        let reduce_chunks = chunks.len();
        let reduce_tasks: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                move || -> Vec<(J::Key, J::Output)> {
                    chunk.into_iter().map(|(k, vs)| (k.clone(), job.reduce(k, vs))).collect()
                }
            })
            .collect();
        // A re-executed reducer re-fetches its share of the (disk-backed)
        // map output.
        let reduce_reexec_bytes = stats.shuffle_bytes / reduce_chunks.max(1) as u64;
        let reduce_outputs = self.cluster.run_stage(
            StageOptions::new(format!("{name}/reduce"))
                .with_task_overhead(self.task_overhead_secs)
                .with_reexec_read_bytes(reduce_reexec_bytes),
            reduce_tasks,
        );

        if obs::enabled() {
            let reg = self.cluster.registry();
            reg.counter("mr.jobs").inc();
            reg.counter("mr.shuffle_bytes").add(stats.shuffle_bytes);
            self.cluster.trace_end(
                "job",
                &format!("job:{name}"),
                vec![
                    ("shuffle_bytes", stats.shuffle_bytes.into()),
                    ("map_emit_bytes", stats.map_emit_bytes.into()),
                    ("distinct_keys", (stats.distinct_keys as u64).into()),
                ],
            );
        }
        (reduce_outputs.into_iter().flatten().collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster::ClusterConfig;

    /// Word-count over integer "documents": key = value % modulus.
    struct ModCount {
        modulus: u64,
    }

    impl MapReduceJob for ModCount {
        type Input = Vec<u64>;
        type Key = u64;
        type Value = u64;
        type Output = u64;

        fn map(&self, partition: &Vec<u64>, emitter: &mut Emitter<u64, u64>) {
            for &x in partition {
                emitter.emit(x % self.modulus, 1);
            }
        }

        fn combine(&self, _key: &u64, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }

        fn reduce(&self, _key: u64, values: Vec<u64>) -> u64 {
            values.iter().sum()
        }
    }

    fn cluster() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    #[test]
    fn counts_are_correct_and_sorted() {
        let c = cluster();
        let engine = MapReduceEngine::new(&c).with_overheads(0.0, 0.0);
        let parts: Vec<Vec<u64>> = vec![(0..50).collect(), (50..100).collect()];
        let (out, stats) = engine.run_job("modcount", &ModCount { modulus: 3 }, &parts, 2);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], (0, 34)); // 0,3,…,99
        assert_eq!(out[1], (1, 33));
        assert_eq!(out[2], (2, 33));
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "outputs sorted by key");
        assert_eq!(stats.map_emit_records, 100);
        assert_eq!(stats.distinct_keys, 3);
    }

    #[test]
    fn combiner_shrinks_shuffle_but_not_map_output() {
        let c = cluster();
        let engine = MapReduceEngine::new(&c).with_overheads(0.0, 0.0);
        let parts: Vec<Vec<u64>> = vec![(0..1000).collect()];
        let (_, stats) = engine.run_job("modcount", &ModCount { modulus: 2 }, &parts, 1);
        // 1000 emitted records of 2 encoded bytes each (1-byte varint key
        // 0/1 + 1-byte varint value 1), combined to 2 pairs per mapper of
        // (key, 500) = 1 + 2 encoded bytes.
        assert_eq!(stats.map_emit_bytes, 2_000);
        assert_eq!(stats.shuffle_bytes, 6);
    }

    #[test]
    fn estimated_sizing_restores_legacy_byte_counts() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_estimated_sizes());
        let engine = MapReduceEngine::new(&c).with_overheads(0.0, 0.0);
        let parts: Vec<Vec<u64>> = vec![(0..1000).collect()];
        let (_, stats) = engine.run_job("modcount", &ModCount { modulus: 2 }, &parts, 1);
        // Legacy flat estimate: 1000 records of 8 + 8 B, combined to 2.
        assert_eq!(stats.map_emit_bytes, 16_000);
        assert_eq!(stats.shuffle_bytes, 32);
    }

    #[test]
    fn bytes_are_charged_to_cluster_meters() {
        let c = cluster();
        let engine = MapReduceEngine::new(&c).with_overheads(0.0, 0.0);
        let parts: Vec<Vec<u64>> = vec![(0..100).collect()];
        let (_, stats) = engine.run_job("modcount", &ModCount { modulus: 5 }, &parts, 1);
        let m = c.metrics();
        assert_eq!(m.dfs_bytes_written, stats.map_emit_bytes);
        assert_eq!(m.network_bytes, stats.shuffle_bytes);
        assert_eq!(m.intermediate_bytes, stats.map_emit_bytes + stats.shuffle_bytes);
    }

    #[test]
    fn job_overhead_advances_virtual_clock() {
        let c = cluster();
        let engine = MapReduceEngine::new(&c); // defaults: 6 s job, 1 s task
        let parts: Vec<Vec<u64>> = vec![vec![1, 2, 3]];
        let _ = engine.run_job("tiny", &ModCount { modulus: 2 }, &parts, 1);
        // ≥ 6 s job init + 1 s map task + 1 s reduce task.
        assert!(c.metrics().virtual_time_secs >= 8.0);
    }

    #[test]
    fn many_reducers_with_few_keys() {
        let c = cluster();
        let engine = MapReduceEngine::new(&c).with_overheads(0.0, 0.0);
        let parts: Vec<Vec<u64>> = vec![(0..10).collect()];
        let (out, _) = engine.run_job("modcount", &ModCount { modulus: 2 }, &parts, 16);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input_produces_no_output() {
        let c = cluster();
        let engine = MapReduceEngine::new(&c).with_overheads(0.0, 0.0);
        let parts: Vec<Vec<u64>> = vec![vec![]];
        let (out, stats) = engine.run_job("modcount", &ModCount { modulus: 2 }, &parts, 4);
        assert!(out.is_empty());
        assert_eq!(stats.map_emit_bytes, 0);
    }
}
