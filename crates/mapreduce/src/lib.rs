//! A MapReduce engine over the simulated cluster.
//!
//! Models the Hadoop execution the paper's sPCA-MapReduce and Mahout-PCA
//! implementations run on (Section 4.1):
//!
//! * **Partition-level mappers** — a map task processes one input partition
//!   and emits `(key, value)` pairs through an [`Emitter`]. Because the
//!   mapper owns the whole partition, the paper's *stateful combiner*
//!   pattern (accumulate partial `XtX`/`YtX` matrices in memory, emit once
//!   in `cleanup`) is expressed by simply emitting at the end of the map
//!   function; the inefficient per-row emission Mahout's Bt job performs is
//!   expressed by emitting inside the row loop. The byte difference —
//!   which is the paper's intermediate-data result — is metered exactly.
//! * **Combiners** — per-mapper aggregation applied to emitted pairs before
//!   the shuffle. Mapper output is charged to the simulated local disk
//!   (the spill) at its *pre-combine* size; the shuffle is charged to the
//!   network at its *post-combine* size, matching Hadoop's counters.
//! * **Reducers** — pairs are grouped by key (sorted, as Hadoop sorts) and
//!   reduced in parallel reduce tasks.
//! * **Job overhead** — each job pays a flat virtual startup cost, the
//!   Hadoop job-initialization overhead the paper calls out when comparing
//!   small datasets on MapReduce vs Spark.

pub mod engine;
pub mod job;

pub use engine::{JobStats, MapReduceEngine};
pub use job::{Emitter, MapReduceJob};
