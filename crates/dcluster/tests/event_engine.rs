//! Event-engine contract tests: deterministic ordering, max-min fair
//! sharing, arithmetic-model reproduction, and fault composition.
//!
//! The properties pinned here are the ones the contended timing model's
//! credibility rests on:
//!
//! 1. **Seq-deterministic ordering** — events scheduled for the same
//!    virtual instant pop in push order, and a whole contended simulation
//!    (charges, stages, link stats) is bit-identical whether the host
//!    pool has 1, 2, or 8 workers. Virtual time never reads host time.
//! 2. **Fair sharing** — concurrent flows through a saturated link get
//!    max-min fair rates that sum exactly to the link's capacity, at any
//!    concurrency (2 / 8 / 64 tested), and no link is ever allocated past
//!    100 %.
//! 3. **Arithmetic reproduction** — with one transfer active at a time,
//!    the event-driven model reproduces the legacy aggregate-bandwidth
//!    charges to within 1 µs. This is the regression guard that keeps
//!    every committed baseline meaningful under the default model.
//! 4. **Fault composition** — a crash mid-transfer cancels the flow's
//!    completion event and re-enqueues the reattempt; results and
//!    recovery logs stay identical to the uncontended engine's.

use std::sync::Arc;

use dcluster::netsim::{simulate, solve_rates, FlowSpec, NO_LINK};
use dcluster::{
    CancelSpec, ClusterConfig, EventQueue, FaultPlan, FaultSpec, SimCluster, TimingModel, Topology,
};
use linalg::WorkerPool;

fn contended_cfg() -> ClusterConfig {
    ClusterConfig::scaled_cluster().with_timing(TimingModel::Contended)
}

// ---------------------------------------------------------------- ordering

#[test]
fn timestamp_ties_pop_in_push_order_regardless_of_interleaving() {
    // Three batches pushed at interleaved times; within each timestamp the
    // pop order must equal push order (seq tiebreak), so the flattened
    // pop sequence is a pure function of the push sequence.
    let mut q = EventQueue::with_capacity(64);
    for i in 0..20u32 {
        q.push(u64::from(i % 3), i);
    }
    let mut popped = Vec::new();
    while let Some(ev) = q.pop() {
        popped.push((ev.time_ns, ev.payload));
    }
    let mut expect: Vec<(u64, u32)> = (0..20u32).map(|i| (u64::from(i % 3), i)).collect();
    expect.sort_by_key(|&(t, i)| (t, i));
    assert_eq!(popped, expect);
}

/// One contended "workload": mixed skewed charges plus a compute stage.
/// Returns everything virtual the run produced.
fn contended_run(workers: usize) -> (u64, Vec<(u64, u64, u64)>, u64, u64) {
    let c = SimCluster::new_with_pool(contended_cfg(), Arc::new(WorkerPool::new(workers)));
    c.charge_network_flows(&[700_001, 0, 13, 0, 250_000, 1, 0, 99_999], "skew-a");
    c.charge_dfs_write_flows(&[0, 480_000, 0, 0, 0, 120_000, 0, 7], "skew-b");
    c.charge_broadcast(33_333);
    let tasks: Vec<_> = (0..24u64).map(|i| move || i * 3).collect();
    let out = c.run_stage(dcluster::StageOptions::new("stage"), tasks);
    assert_eq!(out.len(), 24);
    c.charge_dfs_read(614_400);
    let links = c
        .link_stats()
        .into_iter()
        .map(|l| (l.bytes.to_bits(), l.busy_secs.to_bits(), l.peak_util.to_bits()))
        .collect();
    let m = c.metrics();
    let engine = c.engine_stats().unwrap();
    // Stage durations are measured host time, so total virtual time is
    // host-dependent — compare only the I/O-side quantities, which must
    // be bit-exact: the charges consume bytes and config, never clocks.
    let io_us: u64 = {
        let cats = c.category_time_us();
        cats[2] + cats[3] // network + disk
    };
    (io_us, links, m.network_bytes, engine.resolves)
}

#[test]
fn contended_simulation_is_bitwise_identical_across_1_2_8_host_workers() {
    let one = contended_run(1);
    let two = contended_run(2);
    let eight = contended_run(8);
    assert_eq!(one, two, "1 vs 2 host workers");
    assert_eq!(one, eight, "1 vs 8 host workers");
}

// ------------------------------------------------------------ fair sharing

#[test]
fn fair_share_rates_sum_to_link_capacity_at_2_8_64_transfers() {
    let topo = Topology::new(8, 100.0, 50.0);
    for &n in &[2usize, 8, 64] {
        // All n flows cross the same uplink: it is the bottleneck.
        let flows: Vec<[u32; 2]> = (0..n).map(|_| [topo.uplink(3), topo.fabric()]).collect();
        let rates = solve_rates(&topo, &flows);
        assert_eq!(rates.len(), n);
        let sum: f64 = rates.iter().sum();
        let cap = topo.capacity(topo.uplink(3));
        assert!(
            (sum - cap).abs() < 1e-9 * n as f64,
            "{n} transfers: rates sum {sum} != capacity {cap}"
        );
        // Max-min on a single shared bottleneck is an even split.
        for r in &rates {
            assert!((r - cap / n as f64).abs() < 1e-9, "{n} transfers: {rates:?}");
        }
    }
}

#[test]
fn saturating_fabric_carries_exactly_its_capacity() {
    // 64 flows, 8 per downlink: each downlink splits its 100 B/s over 8
    // flows (12.5 B/s each) and the fabric carries all 64 — exactly its
    // 800 B/s capacity, never more.
    let nodes = 8;
    let topo = Topology::new(nodes, 100.0, 50.0);
    let flows: Vec<FlowSpec> = (0..64)
        .map(|i| FlowSpec::new(10_000, [topo.downlink(i % nodes), topo.fabric()]))
        .collect();
    let out = simulate(&topo, &flows, &[], 256);
    for (l, &util) in out.link_peak_util.iter().enumerate() {
        assert!(util <= 1.0 + 1e-9, "link {l} over capacity: {util}");
    }
    assert!((out.link_peak_util[0] - 1.0).abs() < 1e-9, "fabric fully allocated");
    let rates = solve_rates(&topo, &flows.iter().map(|f| f.links).collect::<Vec<_>>());
    let total: f64 = rates.iter().sum();
    assert!((total - topo.capacity(topo.fabric())).abs() < 1e-6, "sum {total}");
}

#[test]
fn concurrent_transfers_never_exceed_link_capacity_at_any_instant() {
    let c = SimCluster::new(contended_cfg());
    // Heavy mixed traffic with strong skew.
    c.charge_network_flows(&[5_000_000, 3_000_000, 0, 0, 0, 0, 0, 1], "skew");
    c.charge_dfs_write_flows(&[2_000_000, 0, 0, 2_000_000, 0, 0, 0, 0], "spill");
    c.charge_broadcast(250_000);
    for l in c.link_stats() {
        assert!(
            l.peak_util <= 1.0 + 1e-9,
            "link {} peaked at {} > 100%",
            l.label,
            l.peak_util
        );
    }
}

// --------------------------------------------- arithmetic reproduction

#[test]
fn single_active_transfer_reproduces_arithmetic_charges_within_1us() {
    // Property sweep: for a spread of byte counts and every charge kind,
    // the event-driven time of a single (uniformly decomposed) transfer
    // matches the legacy arithmetic charge to within 1 µs.
    let sizes = [
        0u64,
        1,
        7,
        4_096,
        65_537,
        1_000_000,
        1_500_000,
        8_388_608,
        123_456_789,
    ];
    for &bytes in &sizes {
        for kind in 0..4 {
            let u = SimCluster::new(ClusterConfig::scaled_cluster());
            let e = SimCluster::new(contended_cfg());
            for c in [&u, &e] {
                match kind {
                    0 => c.charge_network(bytes),
                    1 => c.charge_dfs_write(bytes),
                    2 => c.charge_dfs_read(bytes),
                    _ => c.charge_broadcast(bytes),
                }
            }
            let tu = u.metrics().virtual_time_secs;
            let te = e.metrics().virtual_time_secs;
            assert!(
                (tu - te).abs() < 1e-6,
                "kind {kind}, {bytes} bytes: arithmetic {tu} vs event-driven {te}"
            );
        }
    }
}

#[test]
fn uniform_reproduction_holds_on_the_paper_cluster_too() {
    let u = SimCluster::new(ClusterConfig::paper_cluster());
    let e = SimCluster::new(ClusterConfig::paper_cluster().with_timing(TimingModel::Contended));
    for c in [&u, &e] {
        c.charge_network(960_000_000);
        c.charge_dfs_write(500_000_000);
        c.charge_broadcast(12_345_678);
    }
    let (tu, te) = (u.metrics().virtual_time_secs, e.metrics().virtual_time_secs);
    assert!((tu - te).abs() < 3e-6, "3 charges: {tu} vs {te}");
}

// ------------------------------------------------------ fault composition

#[test]
fn crash_mid_transfer_cancels_and_requeues_deterministically() {
    let topo = Topology::new(4, 1000.0, 500.0);
    let flows = vec![
        FlowSpec::new(10_000, [topo.disk(0), NO_LINK]),
        FlowSpec::new(4_000, [topo.disk(1), NO_LINK]),
    ];
    let cancels = vec![CancelSpec { flow: 0, at_secs: 5.0, requeue_delay_secs: 1.0 }];
    let a = simulate(&topo, &flows, &cancels, 32);
    let b = simulate(&topo, &flows, &cancels, 32);
    // Deterministic across reruns, bitwise.
    assert_eq!(a.finish_secs, b.finish_secs);
    assert_eq!(a.link_bytes, b.link_bytes);
    // Flow 0: cancelled at 5 s (2500 B in), requeued at 6 s, full 10 000 B
    // re-read at 500 B/s → finishes 26 s. Flow 1 unaffected: 8 s.
    assert!((a.finish_secs[0] - 26.0).abs() < 1e-5, "{:?}", a.finish_secs);
    assert!((a.finish_secs[1] - 8.0).abs() < 1e-5, "{:?}", a.finish_secs);
    // The wasted first-attempt bytes stay visible in the link statistics.
    assert!((a.link_bytes[topo.disk(0) as usize] - 12_500.0).abs() < 1.0);
}

#[test]
fn fault_plans_compose_identically_on_both_engines() {
    // Same stage workload + crash plan under both timing models: results
    // and recovery logs (both structural) must be identical; only virtual
    // durations may differ.
    let run = |timing| {
        let c = SimCluster::new(
            ClusterConfig::scaled_cluster()
                .with_nodes(4)
                .with_cores_per_node(2)
                .with_timing(timing),
        );
        c.install_fault_plan(
            FaultSpec::new(7).with_straggler_rate(0.25).with_speculation(true),
            FaultPlan::new().with_crash(2, 0).with_crash(1, 1),
        )
        .unwrap();
        let mut outs = Vec::new();
        for s in 0..3u64 {
            let tasks: Vec<_> = (0..16u64).map(|i| move || i * 31 + s).collect();
            outs.push(c.run_stage(
                dcluster::StageOptions::new("t").with_reexec_read_bytes(2_048),
                tasks,
            ));
        }
        (outs, c.recovery_log())
    };
    let (out_u, log_u) = run(TimingModel::Uncontended);
    let (out_c, log_c) = run(TimingModel::Contended);
    assert_eq!(out_u, out_c);
    assert_eq!(log_u, log_c);
}
