//! Execution metrics: the virtual clock, byte meters, and per-stage records.

/// Record of one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Human-readable stage label (e.g. `"YtXJob/map"`).
    pub label: String,
    /// Number of tasks in the stage.
    pub tasks: usize,
    /// Virtual seconds of compute (schedule makespan incl. task overhead).
    pub compute_secs: f64,
    /// Total measured host seconds across all tasks (for diagnostics).
    pub cpu_secs: f64,
}

/// Point-in-time copy of all cluster metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The virtual clock, in seconds.
    pub virtual_time_secs: f64,
    /// Bytes shuffled over the simulated network.
    pub network_bytes: u64,
    /// Bytes written to the simulated distributed filesystem.
    pub dfs_bytes_written: u64,
    /// Bytes read back from the simulated distributed filesystem.
    pub dfs_bytes_read: u64,
    /// Total intermediate data: everything that left a task — network
    /// shuffles plus DFS writes. This is the paper's "intermediate data
    /// size" metric (Section 5.2).
    pub intermediate_bytes: u64,
    /// Current live bytes tracked in the driver process.
    pub driver_bytes: u64,
    /// Peak of [`Self::driver_bytes`] — the quantity Figure 8 plots.
    pub driver_peak_bytes: u64,
    /// One record per executed stage, in execution order.
    pub stages: Vec<StageRecord>,
}

/// Mutable metric state owned by the cluster (behind its lock).
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub snapshot: MetricsSnapshot,
}

impl Metrics {
    pub fn advance(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0, "time cannot run backwards");
        self.snapshot.virtual_time_secs += secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_starts_at_zero() {
        let m = MetricsSnapshot::default();
        assert_eq!(m.virtual_time_secs, 0.0);
        assert_eq!(m.network_bytes, 0);
        assert!(m.stages.is_empty());
    }

    #[test]
    fn advance_accumulates() {
        let mut m = Metrics::default();
        m.advance(1.5);
        m.advance(2.5);
        assert!((m.snapshot.virtual_time_secs - 4.0).abs() < 1e-12);
    }
}
