//! Execution metrics: the virtual clock, byte meters, and per-stage records.
//!
//! Byte meters are backed by an [`obs::Registry`] owned by the cluster —
//! the same counters surface in the text report and Chrome-trace export —
//! while [`MetricsSnapshot`] remains the stable read surface the rest of
//! the workspace consumes. Hot paths hold cached `Arc<Counter>` handles, so
//! metering costs one relaxed atomic op per charge.

use std::sync::Arc;

use obs::registry::{Counter, Registry};

/// Category a virtual-clock advance is attributed to. The critical-path
/// profiler (`obs::critpath`) reconstructs per-iteration makespan
/// breakdowns from these; the order matches `obs::critpath::CATEGORIES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeCategory {
    /// Task/driver compute (the base LPT makespan of measured durations).
    Cpu,
    /// Scheduler wait: task-launch overheads, retry delays, job init.
    Scheduler,
    /// Network transfer time (shuffles, broadcasts, re-replication).
    Network,
    /// DFS disk time (reads, writes, spills).
    Disk,
    /// Fault recovery: crash re-execution, lineage recomputation.
    Recovery,
}

impl TimeCategory {
    /// Index into the canonical category order.
    pub fn index(self) -> usize {
        match self {
            TimeCategory::Cpu => 0,
            TimeCategory::Scheduler => 1,
            TimeCategory::Network => 2,
            TimeCategory::Disk => 3,
            TimeCategory::Recovery => 4,
        }
    }

    /// Canonical label (matches `obs::critpath::CATEGORIES`).
    pub fn label(self) -> &'static str {
        obs::critpath::CATEGORIES[self.index()]
    }
}

/// Record of one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Human-readable stage label (e.g. `"YtXJob/map"`).
    pub label: String,
    /// Number of tasks in the stage.
    pub tasks: usize,
    /// Virtual seconds of compute (schedule makespan incl. task overhead).
    pub compute_secs: f64,
    /// Total measured host seconds across all tasks (for diagnostics).
    pub cpu_secs: f64,
}

impl StageRecord {
    /// Fraction of the cluster's virtual core-seconds this stage actually
    /// used: `cpu_secs / (compute_secs × total_cores)`. Below 1.0 means
    /// cores idled during the stage (stragglers, fewer tasks than cores);
    /// degenerate stages report 0.
    pub fn utilization(&self, total_cores: usize) -> f64 {
        let capacity = self.compute_secs * total_cores.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            self.cpu_secs / capacity
        }
    }
}

/// Point-in-time copy of all cluster metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The virtual clock, in seconds.
    pub virtual_time_secs: f64,
    /// Bytes shuffled over the simulated network.
    pub network_bytes: u64,
    /// Bytes written to the simulated distributed filesystem.
    pub dfs_bytes_written: u64,
    /// Bytes read back from the simulated distributed filesystem.
    pub dfs_bytes_read: u64,
    /// Total intermediate data: everything that left a task — network
    /// shuffles plus DFS writes. This is the paper's "intermediate data
    /// size" metric (Section 5.2).
    pub intermediate_bytes: u64,
    /// Current live bytes tracked in the driver process.
    pub driver_bytes: u64,
    /// Peak of [`Self::driver_bytes`] — the quantity Figure 8 plots.
    pub driver_peak_bytes: u64,
    /// Times the virtual clock was asked to move backwards (the advance is
    /// dropped, not applied; a non-zero count flags an accounting bug).
    pub clock_violations: u64,
    /// Virtual µs attributed to each [`TimeCategory`], indexed by
    /// [`TimeCategory::index`]. Sums to the clock minus truncation
    /// remainders and any uncategorized advances.
    pub time_us: [u64; 5],
    /// One record per executed stage, in execution order.
    pub stages: Vec<StageRecord>,
}

/// Mutable metric state owned by the cluster (behind its lock). Byte
/// meters live in the shared registry; scalar clock/driver state stays
/// plain because it is only touched under the cluster lock anyway.
#[derive(Debug)]
pub(crate) struct Metrics {
    registry: Arc<Registry>,
    pub network_bytes: Arc<Counter>,
    pub dfs_bytes_written: Arc<Counter>,
    pub dfs_bytes_read: Arc<Counter>,
    pub intermediate_bytes: Arc<Counter>,
    clock_violations: Arc<Counter>,
    /// Per-category virtual-µs counters (`time.cpu_us`, …), indexed by
    /// [`TimeCategory::index`].
    time_us: [Arc<Counter>; 5],
    pub virtual_time_secs: f64,
    pub driver_bytes: u64,
    pub driver_peak_bytes: u64,
    pub stages: Vec<StageRecord>,
}

impl Default for Metrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        Metrics {
            network_bytes: registry.counter("cluster.network_bytes"),
            dfs_bytes_written: registry.counter("cluster.dfs_bytes_written"),
            dfs_bytes_read: registry.counter("cluster.dfs_bytes_read"),
            intermediate_bytes: registry.counter("cluster.intermediate_bytes"),
            clock_violations: registry.counter("cluster.clock_violations"),
            time_us: std::array::from_fn(|i| {
                registry.counter(&format!("time.{}_us", obs::critpath::CATEGORIES[i]))
            }),
            registry,
            virtual_time_secs: 0.0,
            driver_bytes: 0,
            driver_peak_bytes: 0,
            stages: Vec::new(),
        }
    }
}

impl Metrics {
    /// The registry backing this cluster's meters (shared with exports).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Advances the virtual clock. A negative or NaN advance is a clock
    /// violation: it is dropped (saturating at "no movement") and counted,
    /// rather than corrupting the clock or aborting the run.
    pub fn advance(&mut self, secs: f64) {
        if !(secs >= 0.0) {
            self.clock_violations.inc();
            return;
        }
        self.virtual_time_secs += secs;
    }

    /// Advances the clock, attributing the movement to `cat`, and returns
    /// the `(begin_us, end_us)` window on the truncated-µs trace clock.
    /// Consecutive categorized advances tile the clock exactly — each
    /// window begins where the previous one ended — which is what lets the
    /// critical-path attribution sum to the makespan with no rounding gap.
    pub fn advance_cat(&mut self, secs: f64, cat: TimeCategory) -> (u64, u64) {
        let begin_us = (self.virtual_time_secs * 1e6) as u64;
        self.advance(secs);
        let end_us = (self.virtual_time_secs * 1e6) as u64;
        self.time_us[cat.index()].add(end_us.saturating_sub(begin_us));
        (begin_us, end_us)
    }

    /// Per-category virtual-µs totals, indexed by [`TimeCategory::index`].
    pub fn category_time_us(&self) -> [u64; 5] {
        std::array::from_fn(|i| self.time_us[i].get())
    }

    pub fn add_network(&self, bytes: u64) {
        self.network_bytes.add(bytes);
        self.intermediate_bytes.add(bytes);
    }

    pub fn add_dfs_write(&self, bytes: u64) {
        self.dfs_bytes_written.add(bytes);
        self.intermediate_bytes.add(bytes);
    }

    pub fn add_dfs_read(&self, bytes: u64) {
        self.dfs_bytes_read.add(bytes);
    }

    /// Copies every meter into the stable snapshot shape.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            virtual_time_secs: self.virtual_time_secs,
            network_bytes: self.network_bytes.get(),
            dfs_bytes_written: self.dfs_bytes_written.get(),
            dfs_bytes_read: self.dfs_bytes_read.get(),
            intermediate_bytes: self.intermediate_bytes.get(),
            driver_bytes: self.driver_bytes,
            driver_peak_bytes: self.driver_peak_bytes,
            clock_violations: self.clock_violations.get(),
            time_us: self.category_time_us(),
            stages: self.stages.clone(),
        }
    }

    /// Resets clock, meters, and stage history. Driver-live bytes are kept
    /// (guards may still be outstanding); the registry identity is kept so
    /// cached handles stay live.
    pub fn reset(&mut self) {
        self.network_bytes.reset();
        self.dfs_bytes_written.reset();
        self.dfs_bytes_read.reset();
        self.intermediate_bytes.reset();
        self.clock_violations.reset();
        for c in &self.time_us {
            c.reset();
        }
        self.virtual_time_secs = 0.0;
        self.driver_peak_bytes = self.driver_bytes;
        self.stages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_starts_at_zero() {
        let m = MetricsSnapshot::default();
        assert_eq!(m.virtual_time_secs, 0.0);
        assert_eq!(m.network_bytes, 0);
        assert_eq!(m.clock_violations, 0);
        assert!(m.stages.is_empty());
    }

    #[test]
    fn advance_accumulates() {
        let mut m = Metrics::default();
        m.advance(1.5);
        m.advance(2.5);
        assert!((m.virtual_time_secs - 4.0).abs() < 1e-12);
    }

    #[test]
    fn backwards_advance_is_dropped_and_counted() {
        let mut m = Metrics::default();
        m.advance(2.0);
        m.advance(-5.0);
        m.advance(f64::NAN);
        assert!((m.virtual_time_secs - 2.0).abs() < 1e-12, "clock must not move");
        assert_eq!(m.snapshot().clock_violations, 2);
    }

    #[test]
    fn categorized_advances_tile_the_trace_clock() {
        let mut m = Metrics::default();
        // Durations chosen to truncate awkwardly in µs.
        let (b1, e1) = m.advance_cat(1.0000004, TimeCategory::Cpu);
        let (b2, e2) = m.advance_cat(0.2500003, TimeCategory::Network);
        let (b3, e3) = m.advance_cat(0.1, TimeCategory::Disk);
        assert_eq!(b1, 0);
        assert_eq!(e1, b2, "windows must tile");
        assert_eq!(e2, b3, "windows must tile");
        let totals = m.category_time_us();
        assert_eq!(totals[TimeCategory::Cpu.index()], e1 - b1);
        assert_eq!(totals[TimeCategory::Network.index()], e2 - b2);
        assert_eq!(totals[TimeCategory::Disk.index()], e3 - b3);
        assert_eq!(totals.iter().sum::<u64>(), e3, "categories tile the whole clock");
        // A violating advance moves nothing and charges nothing.
        let (vb, ve) = m.advance_cat(-1.0, TimeCategory::Recovery);
        assert_eq!(vb, ve);
        assert_eq!(m.category_time_us()[TimeCategory::Recovery.index()], 0);
        assert_eq!(m.snapshot().clock_violations, 1);
        assert_eq!(m.snapshot().time_us, m.category_time_us());
        // Registry counters carry the same numbers.
        assert_eq!(m.registry().counter("time.cpu_us").get(), e1 - b1);
        m.reset();
        assert_eq!(m.category_time_us(), [0; 5]);
    }

    #[test]
    fn byte_meters_feed_registry_and_snapshot() {
        let m = Metrics::default();
        m.add_network(100);
        m.add_dfs_write(40);
        m.add_dfs_read(7);
        let s = m.snapshot();
        assert_eq!(s.network_bytes, 100);
        assert_eq!(s.dfs_bytes_written, 40);
        assert_eq!(s.dfs_bytes_read, 7);
        assert_eq!(s.intermediate_bytes, 140);
        assert_eq!(m.registry().counter("cluster.network_bytes").get(), 100);
    }

    #[test]
    fn reset_keeps_registry_identity() {
        let mut m = Metrics::default();
        let handle = m.registry().counter("cluster.network_bytes");
        m.add_network(10);
        m.reset();
        assert_eq!(handle.get(), 0, "cached handles must observe the reset");
        m.add_network(3);
        assert_eq!(handle.get(), 3);
    }

    #[test]
    fn utilization_ratio() {
        let r = StageRecord {
            label: "s".into(),
            tasks: 4,
            compute_secs: 2.0,
            cpu_secs: 4.0,
        };
        assert!((r.utilization(4) - 0.5).abs() < 1e-12);
        let degenerate = StageRecord { label: "d".into(), tasks: 0, compute_secs: 0.0, cpu_secs: 0.0 };
        assert_eq!(degenerate.utilization(4), 0.0);
    }
}
