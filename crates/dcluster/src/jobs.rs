//! Job-level scheduling: admitting a queue of tenant-submitted fit jobs
//! onto one shared cluster's core pool through the discrete-event queue.
//!
//! The scheduler is deliberately *above* the stage scheduler: a job here
//! is an opaque `(cores, runtime)` reservation whose internal stages run
//! through [`crate::SimCluster`] once the job is dispatched. Everything
//! in this module is pure — virtual times come in through [`JobSpec`],
//! flow through the integer-nanosecond [`EventQueue`], and come back out
//! as [`JobRecord`]s, so the schedule is bitwise identical on every
//! machine, host-pool size and run (the determinism contract the serving
//! subsystem inherits).
//!
//! Three policies are modeled, selected via
//! [`crate::ClusterConfig::scheduler`]:
//!
//! * **FIFO** — strict arrival order with head-of-line blocking: if the
//!   head job does not fit in the free cores, nothing behind it runs.
//! * **Fair-share** — weighted max-min across tenants: the tenant with
//!   the smallest accumulated `usage / weight` ratio dispatches next
//!   (usage is charged as `cores x runtime` at dispatch). A flood from
//!   one tenant can no longer starve the others, which is exactly the
//!   p99-wait gap `bench_serving` measures.
//! * **Backfill** — EASY backfilling: the head job reserves a shadow
//!   time (the earliest instant enough running jobs finish for it to
//!   fit) and smaller jobs behind it may start out of order iff they fit
//!   in the free cores *and* complete before the shadow time, so the
//!   head's start is never delayed.
//!
//! Admission control is a bounded pending queue: an arrival that finds
//! the queue at `admission_queue_capacity` is rejected, counted, and
//! never runs — deterministically, because arrivals order through the
//! event queue's `(time, seq)` key.

use crate::events::{ns_to_secs, secs_to_ns, EventQueue, SimNanos};

/// Which job-level scheduling policy admits pending jobs onto the
/// cluster's core pool.
///
/// Like [`crate::TimingModel`], the policy moves only *when* jobs run:
/// each job's fitted model is computed by the same deterministic fit and
/// is bitwise identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict arrival order with head-of-line blocking (the default).
    Fifo,
    /// Weighted fair share across tenants.
    FairShare,
    /// EASY backfilling behind a shadow-time reservation for the head.
    Backfill,
}

impl SchedulerPolicy {
    /// Parses the CLI spelling (`fifo` | `fair-share` | `backfill`).
    pub fn parse(s: &str) -> Option<SchedulerPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedulerPolicy::Fifo),
            "fair" | "fairshare" | "fair-share" | "fair_share" => Some(SchedulerPolicy::FairShare),
            "backfill" | "easy" => Some(SchedulerPolicy::Backfill),
            _ => None,
        }
    }

    /// Canonical lowercase label (fingerprints, reports, JSON).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::FairShare => "fair-share",
            SchedulerPolicy::Backfill => "backfill",
        }
    }

    /// All policies, in a stable order (test matrices, reports).
    pub fn all() -> [SchedulerPolicy; 3] {
        [SchedulerPolicy::Fifo, SchedulerPolicy::FairShare, SchedulerPolicy::Backfill]
    }
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy::Fifo
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One job submitted to the scheduler: an opaque core reservation with a
/// modeled runtime. `submit_secs` and `runtime_secs` are *virtual*
/// seconds — the caller models them from shapes and config, never from
/// host clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id (also the DFS namespace key, see `Dfs::register_job`).
    pub id: String,
    /// Owning tenant index (keys `fair_share_weights`).
    pub tenant: usize,
    /// Virtual submission time.
    pub submit_secs: f64,
    /// Cores the job occupies while running.
    pub cores: usize,
    /// Modeled virtual runtime once dispatched.
    pub runtime_secs: f64,
}

/// The scheduler's verdict on one admitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id, copied from the spec.
    pub id: String,
    /// Owning tenant index.
    pub tenant: usize,
    /// Virtual submission time.
    pub submit_secs: f64,
    /// Virtual dispatch time.
    pub start_secs: f64,
    /// Virtual completion time.
    pub finish_secs: f64,
    /// Cores occupied while running.
    pub cores: usize,
}

impl JobRecord {
    /// Queueing delay: dispatch minus submission.
    pub fn wait_secs(&self) -> f64 {
        self.start_secs - self.submit_secs
    }

    /// Service time: completion minus dispatch.
    pub fn run_secs(&self) -> f64 {
        self.finish_secs - self.start_secs
    }
}

/// Everything `schedule_jobs` decides, in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// One record per *admitted* job, in input order.
    pub records: Vec<JobRecord>,
    /// Job ids in dispatch order (the event-trace structure the
    /// determinism tests compare across policies and worker counts).
    pub start_order: Vec<String>,
    /// Job ids rejected by admission control (queue full at arrival) or
    /// because they can never fit the cluster, in arrival order.
    pub rejected: Vec<String>,
    /// Heap operations the event queue performed.
    pub events_processed: u64,
    /// Virtual completion time of the last job.
    pub makespan_secs: f64,
}

/// Scheduler event payloads: a job arriving at the pending queue or a
/// running job releasing its cores.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrive(usize),
    Finish(usize),
}

/// Runs the full job queue to completion under `policy` and returns the
/// resulting schedule. `weights` is indexed by tenant (missing tenants
/// weigh 1.0); `queue_capacity` bounds the pending queue for admission
/// control. Jobs asking for more than `total_cores` are rejected at
/// arrival — they could never run and would deadlock the queue.
pub fn schedule_jobs(
    jobs: &[JobSpec],
    weights: &[f64],
    total_cores: usize,
    policy: SchedulerPolicy,
    queue_capacity: usize,
) -> ScheduleOutcome {
    assert!(total_cores > 0, "scheduler needs at least one core");
    assert!(queue_capacity > 0, "admission queue capacity must be >= 1");

    let mut queue: EventQueue<Ev> = EventQueue::with_capacity(jobs.len() * 2 + 1);
    for (idx, job) in jobs.iter().enumerate() {
        queue.push(secs_to_ns(job.submit_secs), Ev::Arrive(idx));
    }

    let tenants = jobs.iter().map(|j| j.tenant + 1).max().unwrap_or(1);
    let mut usage = vec![0.0_f64; tenants];
    let mut pending: Vec<usize> = Vec::new(); // job indices, arrival order
    let mut running: Vec<(SimNanos, usize)> = Vec::new(); // (finish_ns, idx)
    let mut free = total_cores;
    let mut starts: Vec<Option<SimNanos>> = vec![None; jobs.len()];
    let mut finishes: Vec<Option<SimNanos>> = vec![None; jobs.len()];
    let mut start_order: Vec<String> = Vec::new();
    let mut rejected: Vec<String> = Vec::new();
    let mut makespan_ns: SimNanos = 0;

    while let Some(ev) = queue.pop() {
        let now = ev.time_ns;
        match ev.payload {
            Ev::Arrive(idx) => {
                if jobs[idx].cores > total_cores {
                    rejected.push(jobs[idx].id.clone());
                } else if pending.len() >= queue_capacity {
                    rejected.push(jobs[idx].id.clone());
                } else {
                    pending.push(idx);
                }
            }
            Ev::Finish(idx) => {
                free += jobs[idx].cores;
                finishes[idx] = Some(now);
                makespan_ns = makespan_ns.max(now);
                running.retain(|&(_, r)| r != idx);
            }
        }
        dispatch(
            policy,
            jobs,
            weights,
            &mut pending,
            &mut running,
            &mut free,
            &mut usage,
            &mut starts,
            &mut start_order,
            &mut queue,
            now,
        );
    }

    let mut records = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        let (Some(s), Some(f)) = (starts[idx], finishes[idx]) else { continue };
        records.push(JobRecord {
            id: job.id.clone(),
            tenant: job.tenant,
            submit_secs: job.submit_secs,
            start_secs: ns_to_secs(s),
            finish_secs: ns_to_secs(f),
            cores: job.cores,
        });
    }
    ScheduleOutcome {
        records,
        start_order,
        rejected,
        events_processed: queue.processed(),
        makespan_secs: ns_to_secs(makespan_ns),
    }
}

/// Starts every pending job the policy allows at virtual time `now`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    policy: SchedulerPolicy,
    jobs: &[JobSpec],
    weights: &[f64],
    pending: &mut Vec<usize>,
    running: &mut Vec<(SimNanos, usize)>,
    free: &mut usize,
    usage: &mut [f64],
    starts: &mut [Option<SimNanos>],
    start_order: &mut Vec<String>,
    queue: &mut EventQueue<Ev>,
    now: SimNanos,
) {
    let mut start = |idx: usize,
                     pending: &mut Vec<usize>,
                     running: &mut Vec<(SimNanos, usize)>,
                     free: &mut usize,
                     usage: &mut [f64]| {
        let job = &jobs[idx];
        *free -= job.cores;
        usage[job.tenant] += job.cores as f64 * job.runtime_secs;
        starts[idx] = Some(now);
        start_order.push(job.id.clone());
        let finish_ns = now.saturating_add(secs_to_ns(job.runtime_secs));
        running.push((finish_ns, idx));
        queue.push(finish_ns, Ev::Finish(idx));
        pending.retain(|&p| p != idx);
    };

    match policy {
        SchedulerPolicy::Fifo => {
            while let Some(&head) = pending.first() {
                if jobs[head].cores > *free {
                    break;
                }
                start(head, pending, running, free, usage);
            }
        }
        SchedulerPolicy::FairShare => loop {
            // Pick the tenant with the smallest weighted service so far
            // among tenants with pending work; ties break on the lower
            // tenant index so the choice is total and deterministic.
            let mut best: Option<(f64, usize, usize)> = None; // (share, tenant, job idx)
            for &idx in pending.iter() {
                let t = jobs[idx].tenant;
                let w = weights.get(t).copied().unwrap_or(1.0);
                let share = usage[t] / w;
                match best {
                    Some((s, bt, _)) if (s, bt) <= (share, t) => {}
                    _ => best = Some((share, t, idx)),
                }
            }
            // pending is in arrival order, so the first hit for the
            // winning tenant is its earliest job.
            let Some((_, _, idx)) = best else { break };
            if jobs[idx].cores > *free {
                break; // strict: the entitled tenant blocks the pool
            }
            start(idx, pending, running, free, usage);
        },
        SchedulerPolicy::Backfill => {
            // Dispatch the head while it fits, exactly like FIFO.
            while let Some(&head) = pending.first() {
                if jobs[head].cores > *free {
                    break;
                }
                start(head, pending, running, free, usage);
            }
            let Some(&head) = pending.first() else { return };
            // EASY reservation: walk running jobs in finish order and
            // find the shadow time at which the head first fits.
            let mut order: Vec<(SimNanos, usize)> = running.clone();
            order.sort_unstable();
            let mut freed = *free;
            let mut shadow = SimNanos::MAX;
            for &(finish_ns, idx) in &order {
                freed += jobs[idx].cores;
                if freed >= jobs[head].cores {
                    shadow = finish_ns;
                    break;
                }
            }
            // Backfill later jobs that fit the free cores *and* finish
            // before the reservation, so the head never slips.
            let candidates: Vec<usize> = pending.iter().skip(1).copied().collect();
            for idx in candidates {
                let job = &jobs[idx];
                if job.cores > *free {
                    continue;
                }
                let finish_ns = now.saturating_add(secs_to_ns(job.runtime_secs));
                if finish_ns > shadow {
                    continue;
                }
                start(idx, pending, running, free, usage);
            }
        }
    }
}

/// Exact nearest-rank percentile of a *sorted* slice (`p` in [0, 100]).
/// Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str, tenant: usize, submit: f64, cores: usize, runtime: f64) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant,
            submit_secs: submit,
            cores,
            runtime_secs: runtime,
        }
    }

    #[test]
    fn policy_parse_and_labels() {
        assert_eq!(SchedulerPolicy::parse("fifo"), Some(SchedulerPolicy::Fifo));
        assert_eq!(SchedulerPolicy::parse("Fair-Share"), Some(SchedulerPolicy::FairShare));
        assert_eq!(SchedulerPolicy::parse("fairshare"), Some(SchedulerPolicy::FairShare));
        assert_eq!(SchedulerPolicy::parse("easy"), Some(SchedulerPolicy::Backfill));
        assert_eq!(SchedulerPolicy::parse("bogus"), None);
        assert_eq!(SchedulerPolicy::default().label(), "fifo");
        assert_eq!(SchedulerPolicy::Backfill.to_string(), "backfill");
    }

    #[test]
    fn fifo_runs_in_arrival_order_with_head_of_line_blocking() {
        // Job b (8 cores) blocks job c (1 core) even though c would fit.
        let jobs = vec![
            job("a", 0, 0.0, 4, 10.0),
            job("b", 0, 1.0, 8, 10.0),
            job("c", 1, 2.0, 1, 1.0),
        ];
        let out = schedule_jobs(&jobs, &[1.0], 8, SchedulerPolicy::Fifo, 16);
        assert_eq!(out.start_order, ["a", "b", "c"]);
        assert!(out.rejected.is_empty());
        let c = out.records.iter().find(|r| r.id == "c").unwrap();
        assert!(c.start_secs >= 20.0, "c must wait behind b: {}", c.start_secs);
    }

    #[test]
    fn backfill_slips_small_jobs_without_delaying_the_head() {
        // Same queue: c (1 core, 1 s) fits before b's shadow time, so
        // backfill runs it at t=2 while FIFO held it to t=20.
        let jobs = vec![
            job("a", 0, 0.0, 4, 10.0),
            job("b", 0, 1.0, 8, 10.0),
            job("c", 1, 2.0, 1, 1.0),
        ];
        let out = schedule_jobs(&jobs, &[1.0], 8, SchedulerPolicy::Backfill, 16);
        let b = out.records.iter().find(|r| r.id == "b").unwrap();
        let c = out.records.iter().find(|r| r.id == "c").unwrap();
        assert_eq!(c.start_secs, 2.0, "c backfills immediately");
        assert_eq!(b.start_secs, 10.0, "the head's start never slips");
    }

    #[test]
    fn backfill_refuses_jobs_that_would_delay_the_head() {
        // d takes 100 s — it would run past the shadow time, so it must
        // NOT backfill even though its cores fit.
        let jobs = vec![
            job("a", 0, 0.0, 4, 10.0),
            job("b", 0, 1.0, 8, 10.0),
            job("d", 1, 2.0, 4, 100.0),
        ];
        let out = schedule_jobs(&jobs, &[1.0], 8, SchedulerPolicy::Backfill, 16);
        let d = out.records.iter().find(|r| r.id == "d").unwrap();
        assert!(d.start_secs >= 10.0, "d must not delay the head: {}", d.start_secs);
    }

    #[test]
    fn fair_share_interleaves_a_flooding_tenant() {
        // Tenant 0 floods 6 jobs at t=0; tenant 1 submits one job just
        // after. Under FIFO it waits behind the whole flood; under
        // fair-share it runs as soon as the first flood job finishes.
        let mut jobs: Vec<JobSpec> =
            (0..6).map(|i| job(&format!("f{i}"), 0, 0.0, 8, 10.0)).collect();
        jobs.push(job("light", 1, 0.5, 8, 1.0));
        let fifo = schedule_jobs(&jobs, &[1.0, 1.0], 8, SchedulerPolicy::Fifo, 16);
        let fair = schedule_jobs(&jobs, &[1.0, 1.0], 8, SchedulerPolicy::FairShare, 16);
        let w = |out: &ScheduleOutcome| {
            out.records.iter().find(|r| r.id == "light").unwrap().wait_secs()
        };
        assert!(
            w(&fair) < w(&fifo),
            "fair-share wait {} must beat FIFO wait {}",
            w(&fair),
            w(&fifo)
        );
        assert_eq!(fair.records.len(), jobs.len());
    }

    #[test]
    fn fair_share_respects_weights() {
        // Two tenants trade 1-core jobs; tenant 1 has 3x the weight so
        // it should accumulate ~3x the service in any prefix.
        let mut jobs = Vec::new();
        for i in 0..8 {
            jobs.push(job(&format!("a{i}"), 0, 0.0, 8, 1.0));
            jobs.push(job(&format!("b{i}"), 1, 0.0, 8, 1.0));
        }
        let out = schedule_jobs(&jobs, &[1.0, 3.0], 8, SchedulerPolicy::FairShare, 32);
        // In the first 4 dispatches, tenant 1 should get 3 slots.
        let heavy = out.start_order[..4].iter().filter(|id| id.starts_with('b')).count();
        assert_eq!(heavy, 3, "weighted tenant gets 3 of the first 4 slots: {:?}", out.start_order);
    }

    #[test]
    fn admission_control_rejects_deterministically() {
        // Capacity 2: with an 8-core job running, arrivals 3.. find the
        // queue full and bounce.
        let mut jobs = vec![job("run", 0, 0.0, 8, 100.0)];
        for i in 0..5 {
            jobs.push(job(&format!("q{i}"), 0, 1.0 + i as f64 * 0.001, 8, 1.0));
        }
        let out = schedule_jobs(&jobs, &[1.0], 8, SchedulerPolicy::Fifo, 2);
        assert_eq!(out.rejected, ["q2", "q3", "q4"]);
        assert_eq!(out.records.len(), 3, "run + q0 + q1 complete");
    }

    #[test]
    fn oversized_jobs_are_rejected_not_deadlocked() {
        let jobs = vec![job("huge", 0, 0.0, 9, 1.0), job("ok", 0, 0.0, 8, 1.0)];
        let out = schedule_jobs(&jobs, &[1.0], 8, SchedulerPolicy::Fifo, 4);
        assert_eq!(out.rejected, ["huge"]);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.makespan_secs, 1.0);
    }

    #[test]
    fn schedules_are_bitwise_repeatable() {
        let jobs: Vec<JobSpec> = (0..40)
            .map(|i| {
                job(
                    &format!("j{i}"),
                    i % 3,
                    (i as f64) * 0.37,
                    1 + (i * 7) % 8,
                    0.5 + (i % 5) as f64,
                )
            })
            .collect();
        for policy in SchedulerPolicy::all() {
            let a = schedule_jobs(&jobs, &[1.0, 2.0, 4.0], 16, policy, 64);
            let b = schedule_jobs(&jobs, &[1.0, 2.0, 4.0], 16, policy, 64);
            assert_eq!(a, b, "{policy} schedule must be deterministic");
            assert_eq!(
                a.records.len() + a.rejected.len(),
                jobs.len(),
                "{policy}: every job is either admitted+finished or rejected"
            );
        }
    }

    #[test]
    fn percentile_is_exact_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
