//! Which I/O timing model converts metered bytes into virtual seconds.

/// How the simulator prices concurrent I/O.
///
/// Both models consume the same byte meters and produce the same fitted
/// models — the choice moves *only* virtual time (and, under
/// [`TimingModel::Contended`], per-link contention statistics). That is
/// the same contract `byte_sizing` and `wire_codec` already honor, and it
/// is what keeps `fit()` bitwise identical across timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingModel {
    /// The legacy arithmetic model (the default): every transfer is
    /// charged at the cluster's full aggregate bandwidth, so concurrent
    /// transfers never interfere. Cheap, and the model all committed
    /// baselines were recorded under.
    Uncontended,
    /// The discrete-event model: each charge decomposes into per-node
    /// flows over a link topology (fabric + per-node uplink/downlink +
    /// per-node disk) and concurrent flows split link capacity
    /// max-min-fairly, with rates re-solved on every transfer
    /// start/finish. Skewed traffic saturates some links while others
    /// idle — the contention the arithmetic model cannot express.
    Contended,
}

impl TimingModel {
    /// Parses the CLI spelling (`uncontended` | `contended`).
    pub fn parse(s: &str) -> Option<TimingModel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "uncontended" | "arithmetic" => Some(TimingModel::Uncontended),
            "contended" | "event" | "event-driven" => Some(TimingModel::Contended),
            _ => None,
        }
    }

    /// Canonical lowercase label (fingerprints, reports, JSON).
    pub fn label(&self) -> &'static str {
        match self {
            TimingModel::Uncontended => "uncontended",
            TimingModel::Contended => "contended",
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::Uncontended
    }
}

impl std::fmt::Display for TimingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cli_spellings() {
        assert_eq!(TimingModel::parse("uncontended"), Some(TimingModel::Uncontended));
        assert_eq!(TimingModel::parse("Contended"), Some(TimingModel::Contended));
        assert_eq!(TimingModel::parse("event-driven"), Some(TimingModel::Contended));
        assert_eq!(TimingModel::parse("arithmetic"), Some(TimingModel::Uncontended));
        assert_eq!(TimingModel::parse("bogus"), None);
    }

    #[test]
    fn default_is_uncontended() {
        assert_eq!(TimingModel::default(), TimingModel::Uncontended);
        assert_eq!(TimingModel::default().label(), "uncontended");
    }
}
