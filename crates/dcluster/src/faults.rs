//! Deterministic fault plans and the recovery-event log.
//!
//! The legacy `task_failure_rate` knob only stretches task durations; this
//! module makes failures *stateful*: a seeded [`FaultPlan`] schedules node
//! crashes at specific global stage indices, and a crashed node really
//! loses its share of cached RDD partitions, its DFS block replicas, and
//! the in-flight first attempts of its tasks. Recovery is algorithmic and
//! platform-specific (lineage recomputation in `sparkle`, HDFS re-reads in
//! `mapreduce`, re-replication in the DFS) — every recovery action is
//! appended to a structural [`RecoveryEvent`] log.
//!
//! # Determinism
//!
//! The simulator's contract is that results — and now recovery logs — are
//! bitwise identical across host worker-pool sizes. Everything here is
//! therefore keyed on *structure*, never on measured time:
//!
//! * fault events fire at a **global stage index** (a counter bumped once
//!   per `run_stage`), not at a virtual timestamp — virtual durations are
//!   measured host time and vary run to run;
//! * straggler selection hashes `(seed, stage index, task index)`;
//! * a task lands on node `task_index % nodes`, a cached partition on node
//!   `partition_index % nodes`, a DFS replica set is a hash of the file
//!   name — all plain functions of indices;
//! * log entries carry only indices and names, no floats. Timing effects
//!   (slowdowns, speculation wins, recompute seconds) go to `obs`
//!   counters and histograms, which are allowed to vary.

use std::collections::{BTreeMap, BTreeSet};

use crate::cluster::ClusterError;

/// Splitmix64 finalizer — the repo's standard cheap deterministic hash.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Declarative description of the fault environment. Seeded and pure —
/// the same spec always yields the same fault behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for every fault decision (crash schedule, straggler picks).
    pub seed: u64,
    /// Fraction of nodes that crash over the horizon (`[0, 1]`). The
    /// number of crashes is `round(rate * nodes)`, at least one when the
    /// rate is nonzero.
    pub node_crash_rate: f64,
    /// Crashes are scheduled uniformly over global stages
    /// `[0, crash_horizon_stages)`. Must be ≥ 1.
    pub crash_horizon_stages: u64,
    /// Probability that a task is a straggler (`[0, 1)`).
    pub straggler_rate: f64,
    /// Duration multiplier for a straggling attempt (≥ 1).
    pub straggler_slowdown: f64,
    /// Launch a speculative backup copy of straggling tasks and take the
    /// first finisher (Spark `spark.speculation` / Hadoop speculative
    /// execution).
    pub speculation: bool,
    /// The backup launches once this quantile of the stage's base task
    /// durations has elapsed (`(0, 1)`; the classic 0.75 default).
    pub speculation_quantile: f64,
}

impl FaultSpec {
    /// A quiet spec (no crashes, no stragglers) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            node_crash_rate: 0.0,
            crash_horizon_stages: 1,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            speculation: false,
            speculation_quantile: 0.75,
        }
    }

    /// Sets the fraction of nodes crashed over the horizon.
    pub fn with_node_crash_rate(mut self, rate: f64) -> Self {
        self.node_crash_rate = rate;
        self
    }

    /// Sets the stage window crashes are scheduled within.
    pub fn with_crash_horizon_stages(mut self, stages: u64) -> Self {
        self.crash_horizon_stages = stages;
        self
    }

    /// Sets the per-task straggler probability.
    pub fn with_straggler_rate(mut self, rate: f64) -> Self {
        self.straggler_rate = rate;
        self
    }

    /// Sets the straggler duration multiplier.
    pub fn with_straggler_slowdown(mut self, factor: f64) -> Self {
        self.straggler_slowdown = factor;
        self
    }

    /// Enables or disables speculative execution.
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Sets the speculation launch quantile.
    pub fn with_speculation_quantile(mut self, q: f64) -> Self {
        self.speculation_quantile = q;
        self
    }

    /// Checks every knob, mirroring `ClusterConfig::validate`.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let bad = |what: String| Err(ClusterError::InvalidConfig { what });
        if !self.node_crash_rate.is_finite() || !(0.0..=1.0).contains(&self.node_crash_rate) {
            return bad(format!("node_crash_rate must be in [0, 1], got {}", self.node_crash_rate));
        }
        if self.crash_horizon_stages == 0 {
            return bad("crash_horizon_stages must be >= 1".into());
        }
        if !self.straggler_rate.is_finite() || !(0.0..1.0).contains(&self.straggler_rate) {
            return bad(format!("straggler_rate must be in [0, 1), got {}", self.straggler_rate));
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return bad(format!(
                "straggler_slowdown must be >= 1, got {}",
                self.straggler_slowdown
            ));
        }
        if !self.speculation_quantile.is_finite()
            || !(0.0..1.0).contains(&self.speculation_quantile)
            || self.speculation_quantile <= 0.0
        {
            return bad(format!(
                "speculation_quantile must be in (0, 1), got {}",
                self.speculation_quantile
            ));
        }
        Ok(())
    }

    /// Whether a task straggles, as a pure function of the identifiers.
    pub(crate) fn task_straggles(&self, stage: u64, task: usize) -> bool {
        if self.straggler_rate <= 0.0 {
            return false;
        }
        let h = mix(self.seed ^ stage.wrapping_mul(0x51ed_270b) ^ (task as u64).wrapping_mul(0x9e6d));
        unit(h) < self.straggler_rate
    }
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Node `node` crashes while global stage `at_stage` runs: its cached
    /// partitions and DFS replicas are dropped and its in-flight first
    /// attempts fail. The node rejoins (blank) immediately after.
    NodeCrash {
        /// Crashed node index.
        node: usize,
        /// Global stage index the crash lands in.
        at_stage: u64,
    },
}

impl FaultEvent {
    fn at_stage(&self) -> u64 {
        match *self {
            FaultEvent::NodeCrash { at_stage, .. } => at_stage,
        }
    }
}

/// An ordered crash schedule. Build one explicitly with [`with_crash`] or
/// derive it from a [`FaultSpec`] with [`generate`].
///
/// [`with_crash`]: FaultPlan::with_crash
/// [`generate`]: FaultPlan::generate
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an explicit node crash.
    pub fn with_crash(mut self, node: usize, at_stage: u64) -> Self {
        self.events.push(FaultEvent::NodeCrash { node, at_stage });
        self
    }

    /// The scheduled events, sorted by stage then node.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Derives the crash schedule from a spec: `round(rate * nodes)`
    /// distinct nodes (at least one when the rate is nonzero) crash at
    /// seeded stages uniform in `[0, crash_horizon_stages)`.
    pub fn generate(spec: &FaultSpec, nodes: usize) -> Self {
        let mut plan = FaultPlan::new();
        if spec.node_crash_rate <= 0.0 || nodes == 0 {
            return plan;
        }
        let count = ((spec.node_crash_rate * nodes as f64).round() as usize).clamp(1, nodes);
        let mut chosen = BTreeSet::new();
        let mut draw = 0u64;
        while chosen.len() < count {
            let node = (mix(spec.seed ^ 0xc4a5 ^ draw) as usize) % nodes;
            draw += 1;
            if !chosen.insert(node) {
                continue;
            }
            let at_stage = mix(spec.seed ^ 0x5eed ^ node as u64) % spec.crash_horizon_stages;
            plan.events.push(FaultEvent::NodeCrash { node, at_stage });
        }
        plan.sort();
        plan
    }

    pub(crate) fn sort(&mut self) {
        self.events.sort_by_key(|e| match *e {
            FaultEvent::NodeCrash { node, at_stage } => (at_stage, node),
        });
    }
}

/// One entry in the recovery log. Structural only — indices and names, no
/// measured times — so logs compare equal across host pool sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A scheduled node crash fired.
    NodeCrashed {
        /// Crashed node.
        node: usize,
        /// Global stage index the crash landed in.
        stage: u64,
    },
    /// A task's first attempt died with its node and was re-executed.
    TaskReattempted {
        /// Global stage index.
        stage: u64,
        /// Task index within the stage.
        task: usize,
    },
    /// A speculative backup copy of a straggling task was launched.
    SpeculativeAttempt {
        /// Global stage index.
        stage: u64,
        /// Task index within the stage.
        task: usize,
    },
    /// A lost cached partition was recomputed from its lineage.
    PartitionRecomputed {
        /// Cache id assigned by [`SimCluster::register_cache`].
        ///
        /// [`SimCluster::register_cache`]: crate::SimCluster::register_cache
        cache: u64,
        /// Partition index within that cache.
        partition: usize,
    },
    /// A DFS block lost a replica and was copied back to full strength.
    BlockReReplicated {
        /// DFS file name.
        file: String,
    },
    /// A DFS file lost its last replica; subsequent reads fail.
    BlockLost {
        /// DFS file name.
        file: String,
    },
    /// An EM checkpoint was written at an iteration boundary.
    CheckpointWritten {
        /// EM iteration the checkpoint captures.
        iteration: u64,
    },
    /// A run resumed from a checkpoint instead of restarting.
    CheckpointRestored {
        /// EM iteration the checkpoint captured.
        iteration: u64,
    },
}

impl RecoveryEvent {
    /// Short kind label for report tables.
    pub fn kind(&self) -> &'static str {
        match self {
            RecoveryEvent::NodeCrashed { .. } => "node_crashed",
            RecoveryEvent::TaskReattempted { .. } => "task_reattempted",
            RecoveryEvent::SpeculativeAttempt { .. } => "speculative_attempt",
            RecoveryEvent::PartitionRecomputed { .. } => "partition_recomputed",
            RecoveryEvent::BlockReReplicated { .. } => "block_re_replicated",
            RecoveryEvent::BlockLost { .. } => "block_lost",
            RecoveryEvent::CheckpointWritten { .. } => "checkpoint_written",
            RecoveryEvent::CheckpointRestored { .. } => "checkpoint_restored",
        }
    }
}

/// A registered in-memory cache (one per persisted RDD): how many
/// partitions it holds and which of them a crash has invalidated.
#[derive(Debug, Default)]
pub(crate) struct CacheEntry {
    pub(crate) partitions: usize,
    pub(crate) lost: BTreeSet<usize>,
}

/// The cluster's mutable fault state: the active plan (with a cursor into
/// its sorted events), the append-only recovery log, and the cache
/// registry. Lives behind one mutex on `SimCluster`; that lock is never
/// held across metrics or DFS locks.
#[derive(Debug, Default)]
pub(crate) struct FaultDomain {
    pub(crate) plan: Option<ActivePlan>,
    pub(crate) log: Vec<RecoveryEvent>,
    pub(crate) caches: BTreeMap<u64, CacheEntry>,
    pub(crate) next_cache_id: u64,
}

#[derive(Debug)]
pub(crate) struct ActivePlan {
    pub(crate) spec: FaultSpec,
    pub(crate) events: Vec<FaultEvent>,
    /// Index of the first event not yet fired.
    pub(crate) cursor: usize,
}

impl ActivePlan {
    /// Pops every crash due at or before `stage`.
    pub(crate) fn due(&mut self, stage: u64) -> Vec<usize> {
        let mut nodes = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].at_stage() <= stage {
            let FaultEvent::NodeCrash { node, .. } = self.events[self.cursor];
            nodes.push(node);
            self.cursor += 1;
        }
        nodes
    }
}

/// The `q`-quantile (nearest-rank) of `values`; 0 for an empty slice.
pub(crate) fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_respects_rate() {
        let spec = FaultSpec::new(7).with_node_crash_rate(0.25).with_crash_horizon_stages(10);
        let a = FaultPlan::generate(&spec, 8);
        let b = FaultPlan::generate(&spec, 8);
        assert_eq!(a, b, "same spec must yield the same plan");
        assert_eq!(a.events().len(), 2, "25% of 8 nodes");
        let nodes: BTreeSet<_> = a
            .events()
            .iter()
            .map(|e| match *e {
                FaultEvent::NodeCrash { node, at_stage } => {
                    assert!(at_stage < 10);
                    node
                }
            })
            .collect();
        assert_eq!(nodes.len(), 2, "crashed nodes must be distinct");
    }

    #[test]
    fn generate_nonzero_rate_crashes_at_least_one_node() {
        let spec = FaultSpec::new(1).with_node_crash_rate(0.01);
        assert_eq!(FaultPlan::generate(&spec, 8).events().len(), 1);
        let quiet = FaultSpec::new(1);
        assert!(FaultPlan::generate(&quiet, 8).events().is_empty());
    }

    #[test]
    fn plan_events_sorted_by_stage() {
        let mut plan = FaultPlan::new().with_crash(3, 9).with_crash(1, 2).with_crash(0, 2);
        plan.sort();
        let stages: Vec<u64> = plan.events().iter().map(|e| e.at_stage()).collect();
        assert_eq!(stages, vec![2, 2, 9]);
    }

    #[test]
    fn spec_validation_rejects_bad_knobs() {
        let ok = FaultSpec::new(0)
            .with_node_crash_rate(0.5)
            .with_straggler_rate(0.3)
            .with_straggler_slowdown(4.0)
            .with_speculation(true);
        assert!(ok.validate().is_ok());
        for bad in [
            FaultSpec::new(0).with_node_crash_rate(1.5),
            FaultSpec::new(0).with_node_crash_rate(f64::NAN),
            FaultSpec::new(0).with_crash_horizon_stages(0),
            FaultSpec::new(0).with_straggler_rate(1.0),
            FaultSpec::new(0).with_straggler_slowdown(0.5),
            FaultSpec::new(0).with_speculation_quantile(0.0),
            FaultSpec::new(0).with_speculation_quantile(1.0),
        ] {
            assert!(
                matches!(bad.validate(), Err(ClusterError::InvalidConfig { .. })),
                "spec should be rejected: {bad:?}"
            );
        }
    }

    #[test]
    fn straggler_selection_is_pure() {
        let spec = FaultSpec::new(42).with_straggler_rate(0.3);
        let picks: Vec<bool> = (0..64).map(|t| spec.task_straggles(5, t)).collect();
        let again: Vec<bool> = (0..64).map(|t| spec.task_straggles(5, t)).collect();
        assert_eq!(picks, again);
        let hits = picks.iter().filter(|&&p| p).count();
        assert!(hits > 0 && hits < 64, "rate 0.3 over 64 tasks should be partial: {hits}");
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.75), 3.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&[], 0.75), 0.0);
    }

    #[test]
    fn active_plan_cursor_fires_once() {
        let mut plan = FaultPlan::new().with_crash(1, 2).with_crash(2, 5);
        plan.sort();
        let mut active =
            ActivePlan { spec: FaultSpec::new(0), events: plan.events().to_vec(), cursor: 0 };
        assert!(active.due(1).is_empty());
        assert_eq!(active.due(3), vec![1]);
        assert!(active.due(3).is_empty(), "an event fires exactly once");
        assert_eq!(active.due(5), vec![2]);
    }
}
