//! Cluster hardware description.

use linalg::wire::{Sizing, WireCodec};

use crate::cluster::ClusterError;
use crate::jobs::SchedulerPolicy;
use crate::timing::TimingModel;

/// Hardware and platform parameters of the simulated cluster.
///
/// The defaults mirror the paper's testbed: 8 Amazon EC2 m3.2xlarge nodes,
/// each with 8 cores and 32 GB of memory, on a ~1 Gbps network with
/// ~100 MB/s effective disk bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Cores per worker node.
    pub cores_per_node: usize,
    /// Memory per worker node, in bytes (caps RDD caching).
    pub memory_per_node: u64,
    /// Memory of the driver/master process, in bytes. Allocations past this
    /// fail — the MLlib-PCA failure mode of Figures 7–8.
    pub driver_memory: u64,
    /// Per-node network link bandwidth in bytes/sec; the cluster's
    /// aggregate shuffle bandwidth is this times the node count.
    pub network_bytes_per_sec: f64,
    /// Per-node disk bandwidth in bytes/sec (the DFS stripes across
    /// nodes); MapReduce routes intermediate data through disk on both
    /// ends of a shuffle.
    pub disk_bytes_per_sec: f64,
    /// Probability that a task's first attempt fails and is transparently
    /// re-executed (straggler/failure injection). Both platforms the paper
    /// targets retry failed tasks without algorithmic consequences; the
    /// simulator charges the retry's time but never its results.
    pub task_failure_rate: f64,
    /// Extra virtual seconds before a failed task's re-execution is
    /// scheduled (failure detection + rescheduling latency).
    pub task_retry_delay_secs: f64,
    /// DFS block replication factor (HDFS `dfs.replication`, default 3).
    /// A node crash drops that node's replicas; files still holding a
    /// replica are copied back to full strength, files that held their
    /// last replica there are lost and reads fail with
    /// [`ClusterError::BlockLost`].
    pub dfs_replication: usize,
    /// How the byte meters price metered values: real `wire` encoded
    /// lengths (default) or the legacy flat `ByteSized` estimates. Only
    /// moves byte counters and the virtual clock — fitted models are
    /// bitwise identical under either policy.
    pub byte_sizing: Sizing,
    /// Which frame generation shuffle-family records are priced in: exact
    /// v2 (default), bitpacked v3, or v3 with lossy `f32` payload
    /// quantization. Applies only to shuffle charge sites — broadcasts,
    /// collects, DFS blocks and checkpoints always stay exact v2. Like
    /// `byte_sizing`, this moves byte meters and the virtual clock only;
    /// fitted models are bitwise identical under every codec.
    pub wire_codec: WireCodec,
    /// How metered bytes turn into virtual time: the legacy arithmetic
    /// full-aggregate-bandwidth model (default), or the discrete-event
    /// shared-bandwidth model where concurrent transfers contend for
    /// per-node links. Moves virtual time only — byte meters and fitted
    /// models are identical under either model.
    pub timing: TimingModel,
    /// Initial capacity of the discrete-event queue's binary heap (the
    /// heap still grows past it; this only pre-sizes the allocation).
    pub event_queue_capacity: usize,
    /// Job-level scheduling policy for multi-tenant fit queues (see
    /// [`crate::jobs`]). Moves only when jobs run — each job's fitted
    /// model is bitwise identical under every policy.
    pub scheduler: SchedulerPolicy,
    /// Per-tenant fair-share weights, indexed by tenant id. Only read
    /// under [`SchedulerPolicy::FairShare`], but validated always so a
    /// policy switch cannot surface a latent bad config.
    pub fair_share_weights: Vec<f64>,
    /// Bound on the scheduler's pending-job queue *and* each serving
    /// node's request queue: arrivals that find the queue full are
    /// deterministically rejected and counted.
    pub admission_queue_capacity: usize,
    /// Per-node budget for cached fitted models on the serving path, in
    /// bytes. A model is broadcast to a node on first use and evicted
    /// LRU-by-bytes when the budget overflows.
    pub model_cache_bytes: u64,
}

impl ClusterConfig {
    /// The paper's 8-node × 8-core EC2 cluster.
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            nodes: 8,
            cores_per_node: 8,
            memory_per_node: 32 << 30,
            driver_memory: 32 << 30,
            network_bytes_per_sec: 120e6,
            disk_bytes_per_sec: 100e6,
            task_failure_rate: 0.0,
            task_retry_delay_secs: 2.0,
            dfs_replication: 3,
            byte_sizing: Sizing::Encoded,
            wire_codec: WireCodec::V2,
            timing: TimingModel::Uncontended,
            event_queue_capacity: 4096,
            scheduler: SchedulerPolicy::Fifo,
            fair_share_weights: vec![1.0],
            admission_queue_capacity: 32,
            model_cache_bytes: 64 << 20,
        }
    }

    /// A scaled-down cluster for laptop-scale experiments: same shape as
    /// the paper's, with memory *and bandwidth* scaled so the scaled
    /// datasets hit the same walls at proportionally smaller sizes.
    ///
    /// Memory is scaled so MLlib's D x D driver matrix fails at a few
    /// thousand columns (as it fails at ~6,000 on the paper's 32 GB
    /// machines). Bandwidth is scaled because the replica datasets are
    /// ~3 orders of magnitude smaller than the paper's: with full EC2
    /// bandwidth, every algorithm's communication would round to zero and
    /// fixed job overheads would decide every comparison — scaling the
    /// links preserves the paper's communication-to-compute weight, which
    /// is the thing its headline results are about.
    pub fn scaled_cluster() -> Self {
        ClusterConfig {
            nodes: 8,
            cores_per_node: 8,
            memory_per_node: 512 << 20,
            driver_memory: 96 << 20,
            network_bytes_per_sec: 1.5e6,
            disk_bytes_per_sec: 1.2e6,
            task_failure_rate: 0.0,
            task_retry_delay_secs: 2.0,
            dfs_replication: 3,
            byte_sizing: Sizing::Encoded,
            wire_codec: WireCodec::V2,
            timing: TimingModel::Uncontended,
            event_queue_capacity: 4096,
            scheduler: SchedulerPolicy::Fifo,
            fair_share_weights: vec![1.0],
            admission_queue_capacity: 32,
            model_cache_bytes: 64 << 20,
        }
    }

    /// Builder-style override of the job-level scheduling policy.
    pub fn with_scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = policy;
        self
    }

    /// Builder-style override of the per-tenant fair-share weights.
    pub fn with_fair_share_weights(mut self, weights: Vec<f64>) -> Self {
        self.fair_share_weights = weights;
        self
    }

    /// Builder-style override of the admission queue bound.
    pub fn with_admission_queue_capacity(mut self, capacity: usize) -> Self {
        self.admission_queue_capacity = capacity;
        self
    }

    /// Builder-style override of the per-node model-cache budget.
    pub fn with_model_cache_bytes(mut self, bytes: u64) -> Self {
        self.model_cache_bytes = bytes;
        self
    }

    /// Builder-style override of the I/O timing model.
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Builder-style override of the event queue's initial heap capacity.
    pub fn with_event_queue_capacity(mut self, capacity: usize) -> Self {
        self.event_queue_capacity = capacity;
        self
    }

    /// Builder-style override of the byte-sizing policy.
    pub fn with_byte_sizing(mut self, sizing: Sizing) -> Self {
        self.byte_sizing = sizing;
        self
    }

    /// Builder-style override of the shuffle wire codec.
    pub fn with_wire_codec(mut self, codec: WireCodec) -> Self {
        self.wire_codec = codec;
        self
    }

    /// Builder-style shorthand for the legacy estimate-based meters.
    pub fn with_estimated_sizes(self) -> Self {
        self.with_byte_sizing(Sizing::Estimated)
    }

    /// Builder-style override of the task failure rate.
    pub fn with_task_failure_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "failure rate must be in [0, 1)");
        self.task_failure_rate = rate;
        self
    }

    /// Builder-style override of the node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style override of cores per node.
    pub fn with_cores_per_node(mut self, cores: usize) -> Self {
        self.cores_per_node = cores;
        self
    }

    /// Builder-style override of driver memory.
    pub fn with_driver_memory(mut self, bytes: u64) -> Self {
        self.driver_memory = bytes;
        self
    }

    /// Builder-style override of per-node memory.
    pub fn with_memory_per_node(mut self, bytes: u64) -> Self {
        self.memory_per_node = bytes;
        self
    }

    /// Builder-style override of the retry rescheduling delay.
    pub fn with_task_retry_delay(mut self, secs: f64) -> Self {
        self.task_retry_delay_secs = secs;
        self
    }

    /// Builder-style override of the DFS replication factor.
    pub fn with_dfs_replication(mut self, factor: usize) -> Self {
        self.dfs_replication = factor;
        self
    }

    /// Checks every knob for a physically meaningful value. Called by
    /// `SimCluster::new`, so a bad config fails at construction instead of
    /// corrupting a simulation half-way through.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let bad = |what: String| Err(ClusterError::InvalidConfig { what });
        if self.timing == TimingModel::Contended && self.nodes == 0 {
            return bad(
                "contended timing needs at least one node (the link topology is per-node)".into(),
            );
        }
        if self.nodes == 0 {
            return bad("nodes must be >= 1".into());
        }
        if self.event_queue_capacity == 0 {
            return bad("event_queue_capacity must be >= 1".into());
        }
        if self.cores_per_node == 0 {
            return bad("cores_per_node must be >= 1".into());
        }
        if !self.task_failure_rate.is_finite() || !(0.0..1.0).contains(&self.task_failure_rate) {
            return bad(format!(
                "task_failure_rate must be in [0, 1), got {}",
                self.task_failure_rate
            ));
        }
        if !self.task_retry_delay_secs.is_finite() || self.task_retry_delay_secs < 0.0 {
            return bad(format!(
                "task_retry_delay_secs must be >= 0, got {}",
                self.task_retry_delay_secs
            ));
        }
        if self.dfs_replication == 0 {
            return bad("dfs_replication must be >= 1 (0 would store no block at all)".into());
        }
        if !self.network_bytes_per_sec.is_finite() || self.network_bytes_per_sec <= 0.0 {
            return bad(format!(
                "network_bytes_per_sec must be > 0, got {}",
                self.network_bytes_per_sec
            ));
        }
        if !self.disk_bytes_per_sec.is_finite() || self.disk_bytes_per_sec <= 0.0 {
            return bad(format!("disk_bytes_per_sec must be > 0, got {}", self.disk_bytes_per_sec));
        }
        if self.fair_share_weights.is_empty() {
            return bad(
                "fair_share_weights must name at least one tenant (an empty weight table \
                 would give every tenant zero entitlement)"
                    .into(),
            );
        }
        for (tenant, &w) in self.fair_share_weights.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                return bad(format!(
                    "fair_share_weights[{tenant}] must be a finite weight > 0, got {w}"
                ));
            }
        }
        if self.admission_queue_capacity == 0 {
            return bad(
                "admission_queue_capacity must be >= 1 (0 would reject every arrival)".into(),
            );
        }
        if self.model_cache_bytes == 0 {
            return bad(
                "model_cache_bytes must be >= 1 (a zero cache could never hold a model)".into(),
            );
        }
        Ok(())
    }

    /// Stable key/value description of the config for run ledgers: every
    /// knob that can move a run's byte meters or virtual clock. Keys are
    /// sorted by construction; values use the same labels as the CLI.
    pub fn fingerprint(&self) -> Vec<(String, String)> {
        let weights: Vec<String> =
            self.fair_share_weights.iter().map(|w| format!("{w}")).collect();
        vec![
            (
                "cluster.admission_queue_capacity".into(),
                self.admission_queue_capacity.to_string(),
            ),
            ("cluster.byte_sizing".into(), format!("{:?}", self.byte_sizing).to_lowercase()),
            ("cluster.cores_per_node".into(), self.cores_per_node.to_string()),
            ("cluster.dfs_replication".into(), self.dfs_replication.to_string()),
            ("cluster.disk_bytes_per_sec".into(), format!("{}", self.disk_bytes_per_sec)),
            ("cluster.driver_memory".into(), self.driver_memory.to_string()),
            ("cluster.event_queue_capacity".into(), self.event_queue_capacity.to_string()),
            ("cluster.fair_share_weights".into(), weights.join(",")),
            ("cluster.memory_per_node".into(), self.memory_per_node.to_string()),
            ("cluster.model_cache_bytes".into(), self.model_cache_bytes.to_string()),
            ("cluster.network_bytes_per_sec".into(), format!("{}", self.network_bytes_per_sec)),
            ("cluster.nodes".into(), self.nodes.to_string()),
            ("cluster.scheduler".into(), self.scheduler.label().to_string()),
            ("cluster.task_failure_rate".into(), format!("{}", self.task_failure_rate)),
            ("cluster.task_retry_delay_secs".into(), format!("{}", self.task_retry_delay_secs)),
            ("cluster.timing".into(), self.timing.label().to_string()),
            ("cluster.wire_codec".into(), self.wire_codec.label().to_string()),
        ]
    }

    /// Total virtual cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Aggregate worker memory across the cluster.
    pub fn total_memory(&self) -> u64 {
        self.memory_per_node * self.nodes as u64
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section5() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.nodes, 8);
        assert_eq!(c.cores_per_node, 8);
        assert_eq!(c.total_cores(), 64);
        assert_eq!(c.memory_per_node, 32 << 30);
    }

    #[test]
    fn builders_override_fields() {
        let c = ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(4);
        assert_eq!(c.total_cores(), 8);
        let c = c.with_driver_memory(1024).with_memory_per_node(2048);
        assert_eq!(c.driver_memory, 1024);
        assert_eq!(c.total_memory(), 4096);
        let c = c.with_dfs_replication(2).with_task_retry_delay(0.5);
        assert_eq!(c.dfs_replication, 2);
        assert_eq!(c.task_retry_delay_secs, 0.5);
        assert_eq!(c.byte_sizing, Sizing::Encoded);
        let c = c.with_estimated_sizes();
        assert_eq!(c.byte_sizing, Sizing::Estimated);
        assert_eq!(c.wire_codec, WireCodec::V2);
        let c = c.with_wire_codec(WireCodec::V3Quantized);
        assert_eq!(c.wire_codec, WireCodec::V3Quantized);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn default_configs_validate() {
        assert!(ClusterConfig::paper_cluster().validate().is_ok());
        assert!(ClusterConfig::scaled_cluster().validate().is_ok());
    }

    fn rejected(c: ClusterConfig) -> String {
        match c.validate() {
            Err(ClusterError::InvalidConfig { what }) => what,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_failure_rate_of_one() {
        let mut c = ClusterConfig::paper_cluster();
        c.task_failure_rate = 1.0;
        assert!(rejected(c).contains("task_failure_rate"));
    }

    #[test]
    fn validate_rejects_negative_failure_rate() {
        let mut c = ClusterConfig::paper_cluster();
        c.task_failure_rate = -0.1;
        assert!(rejected(c).contains("task_failure_rate"));
    }

    #[test]
    fn validate_rejects_nan_failure_rate() {
        let mut c = ClusterConfig::paper_cluster();
        c.task_failure_rate = f64::NAN;
        assert!(rejected(c).contains("task_failure_rate"));
    }

    #[test]
    fn validate_rejects_negative_retry_delay() {
        let c = ClusterConfig::paper_cluster().with_task_retry_delay(-1.0);
        assert!(rejected(c).contains("task_retry_delay_secs"));
    }

    #[test]
    fn validate_rejects_zero_replication() {
        let c = ClusterConfig::paper_cluster().with_dfs_replication(0);
        assert!(rejected(c).contains("dfs_replication"));
    }

    #[test]
    fn validate_rejects_empty_cluster() {
        assert!(rejected(ClusterConfig::paper_cluster().with_nodes(0)).contains("nodes"));
        assert!(
            rejected(ClusterConfig::paper_cluster().with_cores_per_node(0)).contains("cores")
        );
    }

    #[test]
    fn validate_rejects_zero_network_bandwidth() {
        let mut c = ClusterConfig::paper_cluster();
        c.network_bytes_per_sec = 0.0;
        assert!(rejected(c).contains("network_bytes_per_sec"));
    }

    #[test]
    fn validate_rejects_negative_network_bandwidth() {
        let mut c = ClusterConfig::paper_cluster();
        c.network_bytes_per_sec = -1.0;
        assert!(rejected(c).contains("network_bytes_per_sec"));
    }

    #[test]
    fn validate_rejects_zero_disk_bandwidth() {
        let mut c = ClusterConfig::paper_cluster();
        c.disk_bytes_per_sec = 0.0;
        assert!(rejected(c).contains("disk_bytes_per_sec"));
    }

    #[test]
    fn validate_rejects_negative_disk_bandwidth() {
        let mut c = ClusterConfig::paper_cluster();
        c.disk_bytes_per_sec = -5.0;
        assert!(rejected(c).contains("disk_bytes_per_sec"));
    }

    #[test]
    fn validate_rejects_zero_event_queue_capacity() {
        let c = ClusterConfig::paper_cluster().with_event_queue_capacity(0);
        assert!(rejected(c).contains("event_queue_capacity"));
    }

    #[test]
    fn validate_rejects_contended_with_zero_nodes() {
        let c = ClusterConfig::paper_cluster().with_timing(TimingModel::Contended).with_nodes(0);
        let what = rejected(c);
        assert!(what.contains("contended"), "got: {what}");
    }

    #[test]
    fn validate_rejects_empty_fair_share_weights() {
        let c = ClusterConfig::paper_cluster().with_fair_share_weights(vec![]);
        assert!(rejected(c).contains("fair_share_weights"));
    }

    #[test]
    fn validate_rejects_zero_tenant_weight() {
        let c = ClusterConfig::paper_cluster().with_fair_share_weights(vec![1.0, 0.0]);
        assert!(rejected(c).contains("fair_share_weights[1]"));
    }

    #[test]
    fn validate_rejects_nan_tenant_weight() {
        let c = ClusterConfig::paper_cluster().with_fair_share_weights(vec![f64::NAN]);
        assert!(rejected(c).contains("fair_share_weights[0]"));
    }

    #[test]
    fn validate_rejects_zero_admission_queue_capacity() {
        let c = ClusterConfig::paper_cluster().with_admission_queue_capacity(0);
        assert!(rejected(c).contains("admission_queue_capacity"));
    }

    #[test]
    fn validate_rejects_zero_model_cache() {
        let c = ClusterConfig::paper_cluster().with_model_cache_bytes(0);
        assert!(rejected(c).contains("model_cache_bytes"));
    }

    #[test]
    fn scheduler_defaults_to_fifo_and_fingerprints() {
        let c = ClusterConfig::scaled_cluster();
        assert_eq!(c.scheduler, SchedulerPolicy::Fifo);
        assert_eq!(c.admission_queue_capacity, 32);
        let c = c
            .with_scheduler(SchedulerPolicy::FairShare)
            .with_fair_share_weights(vec![1.0, 4.0])
            .with_admission_queue_capacity(7)
            .with_model_cache_bytes(1 << 20);
        assert!(c.validate().is_ok());
        let fp = c.fingerprint();
        assert!(fp.contains(&("cluster.scheduler".into(), "fair-share".into())));
        assert!(fp.contains(&("cluster.fair_share_weights".into(), "1,4".into())));
        assert!(fp.contains(&("cluster.admission_queue_capacity".into(), "7".into())));
        assert!(fp.contains(&("cluster.model_cache_bytes".into(), "1048576".into())));
    }

    #[test]
    fn timing_defaults_to_uncontended_and_fingerprints() {
        let c = ClusterConfig::scaled_cluster();
        assert_eq!(c.timing, TimingModel::Uncontended);
        assert_eq!(c.event_queue_capacity, 4096);
        let c = c.with_timing(TimingModel::Contended).with_event_queue_capacity(128);
        assert!(c.validate().is_ok());
        let fp = c.fingerprint();
        assert!(fp.contains(&("cluster.timing".into(), "contended".into())));
        assert!(fp.contains(&("cluster.event_queue_capacity".into(), "128".into())));
        let keys: Vec<&String> = fp.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "fingerprint keys must stay sorted");
    }
}
