//! The discrete-event queue: a single binary-heap priority queue over
//! *virtual* time with deterministic tie-breaking.
//!
//! Every event carries a `(time_ns, seq)` key. `time_ns` is integer
//! virtual nanoseconds — never host time — and `seq` is a monotonically
//! increasing sequence number assigned at push. Two events scheduled for
//! the same instant therefore pop in push order on every machine and
//! every host-pool size, which is the property the whole contended
//! timing model's determinism argument rests on: the simulation consumes
//! only byte counts and config knobs, orders them through this queue,
//! and produces the same virtual schedule everywhere.
//!
//! Cancellation is by tombstone: [`EventQueue::cancel`] marks a sequence
//! number dead and the queue silently skips it at pop (a crashed
//! transfer's completion event must not fire). Skipped and stale events
//! still count as *processed* — they cost a heap operation, which is
//! what the `bench_scale` events/sec throughput metric measures.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Virtual time in whole nanoseconds. Nanosecond granularity keeps the
/// worst-case quantization error of a charge ~3 orders of magnitude below
/// the 1 µs reproduction tolerance against the arithmetic model.
pub type SimNanos = u64;

/// Converts virtual seconds to the queue's nanosecond clock, rounding
/// half-up. Saturates instead of overflowing (≈584 virtual years).
#[inline]
pub fn secs_to_ns(secs: f64) -> SimNanos {
    if !(secs >= 0.0) {
        return 0;
    }
    let ns = secs * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        (ns + 0.5) as u64
    }
}

/// Converts the nanosecond clock back to seconds.
#[inline]
pub fn ns_to_secs(ns: SimNanos) -> f64 {
    ns as f64 * 1e-9
}

/// One scheduled event: the `(time_ns, seq)` ordering key plus an opaque
/// payload the ordering never inspects.
#[derive(Debug, Clone)]
pub struct Scheduled<P> {
    /// Virtual firing time in nanoseconds.
    pub time_ns: SimNanos,
    /// Push-order sequence number — the deterministic tiebreak.
    pub seq: u64,
    /// Caller payload.
    pub payload: P,
}

// Ordering is by (time, seq) only; `seq` is unique per queue, so the
// order is total and `Eq` is consistent with `Ord`.
impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) on top.
        other.time_ns.cmp(&self.time_ns).then(other.seq.cmp(&self.seq))
    }
}

/// Binary-heap virtual-time event queue with seq-numbered deterministic
/// tie-breaking and tombstone cancellation.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Scheduled<P>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    processed: u64,
    last_pop_ns: SimNanos,
}

impl<P> EventQueue<P> {
    /// An empty queue with room for `capacity` events before the heap
    /// reallocates (the `ClusterConfig::event_queue_capacity` knob).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            cancelled: HashSet::new(),
            next_seq: 0,
            processed: 0,
            last_pop_ns: 0,
        }
    }

    /// Schedules `payload` at `time_ns` and returns its sequence number
    /// (the handle [`Self::cancel`] takes).
    pub fn push(&mut self, time_ns: SimNanos, payload: P) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time_ns, seq, payload });
        seq
    }

    /// Tombstones event `seq`: it will be dropped at pop instead of
    /// delivered. Cancelling an already-popped or unknown seq is a no-op.
    pub fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    /// Pops the earliest live event; `(time_ns, seq)` ties resolve in
    /// push order. Cancelled events are skipped (but counted as
    /// processed heap operations).
    pub fn pop(&mut self) -> Option<Scheduled<P>> {
        while let Some(ev) = self.heap.pop() {
            self.processed += 1;
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time_ns >= self.last_pop_ns, "event time went backwards");
            self.last_pop_ns = ev.time_ns;
            return Some(ev);
        }
        None
    }

    /// Firing time of the earliest live event, without popping it.
    pub fn peek_time(&mut self) -> Option<SimNanos> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                self.processed += 1;
                continue;
            }
            return Some(ev.time_ns);
        }
        None
    }

    /// Live + tombstoned events still in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total heap pops so far, including skipped tombstones — the
    /// denominator-free half of the events/sec throughput metric.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::with_capacity(8);
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn timestamp_ties_break_by_push_order() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..50u32 {
            q.push(7, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>(), "ties must pop in push order");
    }

    #[test]
    fn cancel_tombstones_without_delivery() {
        let mut q = EventQueue::with_capacity(4);
        let a = q.push(1, "a");
        q.push(2, "b");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
        // The tombstoned pop still counted as a processed heap op.
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::with_capacity(4);
        let a = q.push(1, ());
        q.push(5, ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.pop().unwrap().time_ns, 5);
    }

    #[test]
    fn ns_conversions_round_trip_within_a_nanosecond() {
        for secs in [0.0, 1.0, 0.123_456_789, 4096.25] {
            let ns = secs_to_ns(secs);
            assert!((ns_to_secs(ns) - secs).abs() < 1e-9, "{secs}");
        }
        assert_eq!(secs_to_ns(-1.0), 0, "negative times clamp to the epoch");
        assert_eq!(secs_to_ns(f64::NAN), 0);
    }
}
