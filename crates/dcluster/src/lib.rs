//! Simulated commodity cluster.
//!
//! The paper's evaluation ran on 8 Amazon EC2 nodes (64 cores). This crate
//! replaces that hardware with a *virtual-time* simulation that preserves
//! the quantities every experiment in Section 5 depends on:
//!
//! * **Compute** — every task closure really runs (on the host's threads)
//!   and its wall time is measured, then the measured durations are
//!   list-scheduled onto `nodes × cores_per_node` *virtual* cores. The
//!   virtual clock advances by the schedule's makespan, so doubling the
//!   virtual core count halves compute time for divisible work (Table 4)
//!   regardless of how many physical cores the host has.
//! * **Communication** — engines report every byte that crosses the
//!   simulated network or the simulated distributed filesystem; bytes are
//!   metered exactly (the intermediate-data results of Section 5.2) and
//!   converted to virtual time through configurable bandwidths.
//! * **Memory** — driver-side allocations are tracked against a
//!   configurable cap and fail with [`ClusterError::DriverOom`] when they
//!   exceed it, which is how MLlib-PCA's D > 6,000 failures reproduce
//!   (Figures 7 and 8).
//! * **Failure** — a seeded [`FaultPlan`] schedules *stateful* node
//!   crashes (cached partitions and DFS replicas really drop, first
//!   attempts really die) plus straggler slowdowns with optional
//!   speculative execution; every recovery action lands in a
//!   deterministic [`RecoveryEvent`] log. Faults change schedules, bytes,
//!   and logs — never results.

pub mod cluster;
pub mod config;
pub mod events;
pub mod faults;
pub mod hdfs;
pub mod jobs;
pub mod metrics;
pub mod netsim;
pub mod scheduler;
pub mod timing;

pub use cluster::{ClusterError, DriverAlloc, LinkStat, SimCluster, StageOptions};
pub use config::ClusterConfig;
pub use events::EventQueue;
pub use faults::{FaultEvent, FaultPlan, FaultSpec, RecoveryEvent};
pub use hdfs::Dfs;
pub use jobs::{schedule_jobs, JobRecord, JobSpec, ScheduleOutcome, SchedulerPolicy};
pub use metrics::{MetricsSnapshot, StageRecord};
pub use netsim::{CancelSpec, FlowOutcome, FlowSpec, Topology};
pub use timing::TimingModel;
