//! The simulated cluster: real task execution, virtual accounting.
//!
//! Task execution runs on the persistent [`linalg::WorkerPool`] — the same
//! pool the blocked kernels use — instead of spawning a thread scope per
//! stage. The pool returns results in submission order and the virtual
//! clock is advanced from per-task wall durations exactly as before, so
//! the accounting model is unchanged by the substrate swap.
//!
//! # Tracing
//!
//! When an [`obs`] collector is installed, each cluster lazily allocates a
//! *virtual process* in the trace (one pid per simulated cluster clock,
//! named via [`SimCluster::set_trace_label`]) and emits stage spans,
//! byte-meter counter series, and driver spans on the **virtual** time
//! axis, while stage execution also appears as host-wall-time spans on the
//! caller's thread track. With no collector, every site reduces to one
//! relaxed atomic load.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use linalg::WorkerPool;

use crate::config::ClusterConfig;
use crate::faults::{quantile, ActivePlan, CacheEntry, FaultDomain, FaultPlan, FaultSpec, RecoveryEvent};
use crate::hdfs::Dfs;
use crate::metrics::{Metrics, MetricsSnapshot, StageRecord, TimeCategory};
use crate::netsim::{self, CancelSpec, FlowSpec, Topology};
use crate::scheduler::{host_schedule, makespan_with_critical};
use crate::timing::TimingModel;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors surfaced by the cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A driver-side allocation exceeded the configured driver memory —
    /// the failure MLlib-PCA hits past D ≈ 6,000 in the paper.
    DriverOom {
        /// Bytes the caller asked for.
        requested: u64,
        /// Bytes already live in the driver.
        in_use: u64,
        /// Configured driver memory.
        limit: u64,
    },
    /// A DFS read named a file that was never written.
    NoSuchFile {
        /// The requested file name.
        name: String,
    },
    /// A DFS read named a file whose last replica died with a crashed
    /// node (under-replicated data is really gone).
    BlockLost {
        /// The requested file name.
        name: String,
    },
    /// A configuration knob had a physically meaningless value.
    InvalidConfig {
        /// Human-readable description of the offending knob.
        what: String,
    },
    /// A job id was registered twice — two tenants (or one tenant's
    /// double submission) would share a DFS namespace and silently
    /// overwrite each other's checkpoints.
    DuplicateJob {
        /// The contested job id.
        job: String,
    },
}

/// Ignore lock poisoning on plain-data mutexes.
fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DriverOom { requested, in_use, limit } => write!(
                f,
                "driver out of memory: requested {requested} B with {in_use} B live (limit {limit} B)"
            ),
            ClusterError::NoSuchFile { name } => write!(f, "dfs: no such file {name:?}"),
            ClusterError::BlockLost { name } => {
                write!(f, "dfs: all replicas of {name:?} were lost to node crashes")
            }
            ClusterError::InvalidConfig { what } => write!(f, "invalid cluster config: {what}"),
            ClusterError::DuplicateJob { job } => {
                write!(f, "job id {job:?} is already registered on this cluster's DFS")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-stage execution options.
#[derive(Debug, Clone)]
pub struct StageOptions {
    /// Label recorded in the stage metrics.
    pub label: String,
    /// Virtual seconds of launch overhead added to every task. Hadoop task
    /// slots cost seconds; Spark tasks cost milliseconds — this single knob
    /// is what separates the two engines' small-job behaviour (the paper's
    /// §5.2 observation that Hadoop overheads dominate small inputs).
    pub task_overhead_secs: f64,
    /// DFS bytes a re-executed task must read back to rebuild its input
    /// (MapReduce recovery: failed tasks re-read their HDFS-materialized
    /// split). Zero for engines that recover through lineage instead.
    pub reexec_read_bytes_per_task: u64,
}

impl StageOptions {
    /// Options with the given label and no per-task overhead.
    pub fn new(label: impl Into<String>) -> Self {
        StageOptions {
            label: label.into(),
            task_overhead_secs: 0.0,
            reexec_read_bytes_per_task: 0,
        }
    }

    /// Sets the per-task virtual launch overhead.
    pub fn with_task_overhead(mut self, secs: f64) -> Self {
        self.task_overhead_secs = secs;
        self
    }

    /// Sets the DFS bytes re-read per re-executed task after a crash.
    pub fn with_reexec_read_bytes(mut self, bytes: u64) -> Self {
        self.reexec_read_bytes_per_task = bytes;
        self
    }
}

/// A simulated cluster instance. Cheap to share by reference; all interior
/// state is behind a lock.
pub struct SimCluster {
    cfg: ClusterConfig,
    metrics: Mutex<Metrics>,
    /// Persistent host-thread pool shared with the linalg kernels.
    pool: Arc<WorkerPool>,
    /// Counter feeding the deterministic failure-injection hash.
    failure_counter: AtomicU64,
    /// Binding of this cluster to a virtual trace process.
    trace: Mutex<TraceBinding>,
    /// The cluster's distributed filesystem (replicated block namespace).
    dfs: Dfs,
    /// Global stage index: bumped once per `run_stage` call. Fault events
    /// key on this, never on virtual time — stage indices are a pure
    /// function of the workload, virtual durations are measured host time.
    stage_seq: AtomicU64,
    /// Sequence source for critical-path segments (starts at 1; 0 means
    /// "no predecessor").
    segment_seq: AtomicU64,
    /// Sequence number of the most recently emitted segment — the `prev`
    /// causality edge of the next one. The cluster is driver-sequential,
    /// so the chain is the critical path.
    last_segment: AtomicU64,
    /// Fault plan, recovery log, and cache registry. Never held across
    /// the metrics or DFS locks.
    faults: Mutex<FaultDomain>,
    /// Job id currently submitting stages (multi-tenant runs): stage
    /// labels are prefixed `<job>/` so per-job work stays attributable
    /// in the stage metrics. `None` (the default) leaves labels as-is.
    job_scope: Mutex<Option<String>>,
    /// Discrete-event engine state: the (immutable) link topology plus
    /// lock-guarded accumulated per-link contention statistics. `None`
    /// under the default [`TimingModel::Uncontended`], so the legacy
    /// model pays nothing. The stats lock is never held across the
    /// metrics, trace, or fault locks.
    contention: Option<Contention>,
}

/// Per-link contention statistics accumulated across every contended
/// charge (what `trace_report`'s per-link table renders).
#[derive(Debug, Clone)]
pub struct LinkStat {
    /// Link name (`fabric`, `up:N`, `down:N`, `disk:N`).
    pub label: String,
    /// Capacity in bytes/sec.
    pub capacity: f64,
    /// Bytes carried (includes cancelled attempts' partial progress, so
    /// it can exceed the byte meters under faults).
    pub bytes: f64,
    /// Virtual seconds the link spent with at least one active flow.
    pub busy_secs: f64,
    /// Peak allocated-rate / capacity over all re-solves (≤ 1.0: the
    /// max-min solver never over-allocates a link).
    pub peak_util: f64,
}

/// Whole-run discrete-event engine totals (contended timing only).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Heap events processed (arrivals, completions, cancels, stale pops,
    /// and slot-schedule completions).
    pub events: u64,
    /// Max-min rate re-solves performed.
    pub resolves: u64,
    /// Peak number of simultaneously active flows.
    pub peak_flows: usize,
}

/// Interior state of the contended engine: the topology is fixed at
/// construction (pure function of the config), only the accumulated
/// statistics need the lock.
struct Contention {
    topo: Topology,
    state: Mutex<LinkTotals>,
}

#[derive(Default)]
struct LinkTotals {
    link_bytes: Vec<f64>,
    link_busy_secs: Vec<f64>,
    link_peak_util: Vec<f64>,
    stats: EngineStats,
}

impl Contention {
    fn new(cfg: &ClusterConfig) -> Self {
        let topo = Topology::new(cfg.nodes, cfg.network_bytes_per_sec, cfg.disk_bytes_per_sec);
        let n = topo.len();
        Contention {
            topo,
            state: Mutex::new(LinkTotals {
                link_bytes: vec![0.0; n],
                link_busy_secs: vec![0.0; n],
                link_peak_util: vec![0.0; n],
                stats: EngineStats::default(),
            }),
        }
    }

    fn absorb(&self, out: &netsim::FlowOutcome) {
        let mut st = lock_plain(&self.state);
        for l in 0..st.link_bytes.len() {
            st.link_bytes[l] += out.link_bytes[l];
            st.link_busy_secs[l] += out.link_busy_secs[l];
            if out.link_peak_util[l] > st.link_peak_util[l] {
                st.link_peak_util[l] = out.link_peak_util[l];
            }
        }
        st.stats.events += out.events;
        st.stats.resolves += out.resolves;
        st.stats.peak_flows = st.stats.peak_flows.max(out.peak_flows);
    }
}

/// Timing/byte consequences of one stage's faults, applied after the
/// fault lock is released.
#[derive(Default)]
struct StageFaultEffects {
    crashed_nodes: Vec<usize>,
    reexec_read_bytes: u64,
    backup_cpu_secs: f64,
}

/// Lazily-established link between a cluster and the installed collector:
/// the virtual pid is allocated on first use and re-allocated whenever a
/// *different* collector is installed (tests install fresh ones).
#[derive(Default)]
struct TraceBinding {
    /// Process label shown in trace viewers (empty → `"cluster"`).
    label: String,
    /// `(collector identity, allocated virtual pid)`.
    bound: Option<(usize, u32)>,
}

impl SimCluster {
    /// Creates a cluster with the given hardware description, running its
    /// stages on the process-wide [`WorkerPool::global`] pool.
    pub fn new(cfg: ClusterConfig) -> Self {
        SimCluster::new_with_pool(cfg, WorkerPool::global().clone())
    }

    /// Creates a cluster running its stages on a specific pool. Results are
    /// identical whatever the pool size — only host wall time changes.
    ///
    /// Panics on a config that fails [`ClusterConfig::validate`] — a bad
    /// knob should fail here, not corrupt a simulation half-way through.
    pub fn new_with_pool(cfg: ClusterConfig, pool: Arc<WorkerPool>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("SimCluster: {e}");
        }
        let contention = (cfg.timing == TimingModel::Contended).then(|| Contention::new(&cfg));
        SimCluster {
            cfg,
            metrics: Mutex::new(Metrics::default()),
            pool,
            failure_counter: AtomicU64::new(0),
            trace: Mutex::new(TraceBinding::default()),
            dfs: Dfs::new(),
            stage_seq: AtomicU64::new(0),
            segment_seq: AtomicU64::new(1),
            last_segment: AtomicU64::new(0),
            faults: Mutex::new(FaultDomain::default()),
            job_scope: Mutex::new(None),
            contention,
        }
    }

    /// Scopes subsequently submitted stages to a job: their labels are
    /// recorded as `<job>/<label>`. Pass `None` to clear. The scope
    /// moves only labels — never schedules, bytes, or fitted models.
    pub fn set_job_scope(&self, job: Option<&str>) {
        *lock_plain(&self.job_scope) = job.map(String::from);
    }

    /// The job id stages are currently scoped to, if any.
    pub fn job_scope(&self) -> Option<String> {
        lock_plain(&self.job_scope).clone()
    }

    /// The cluster's distributed filesystem.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The host-thread pool this cluster executes on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The registry backing this cluster's byte meters and stage stats.
    pub fn registry(&self) -> Arc<obs::registry::Registry> {
        Arc::clone(self.metrics_lock().registry())
    }

    /// Names this cluster's virtual process in exported traces (e.g.
    /// `"sPCA-Spark"`). Renames in place if the pid is already allocated.
    pub fn set_trace_label(&self, label: impl Into<String>) {
        let label = label.into();
        let mut tb = lock_plain(&self.trace);
        tb.label = label.clone();
        if let (Some((key, pid)), Some(c)) = (tb.bound, obs::collector()) {
            if Arc::as_ptr(&c) as usize == key {
                c.set_process_label(pid, &label);
            }
        }
    }

    /// The virtual clock in whole microseconds (the trace time unit).
    pub fn virtual_time_us(&self) -> u64 {
        (self.metrics_lock().virtual_time_secs * 1e6) as u64
    }

    /// The label this cluster's virtual process carries in traces (empty
    /// until [`Self::set_trace_label`] is called).
    pub fn trace_label(&self) -> String {
        lock_plain(&self.trace).label.clone()
    }

    /// Per-category virtual-µs totals (cpu / scheduler / network / disk /
    /// recovery, in `obs::critpath::CATEGORIES` order). The EM driver
    /// diffs these around each iteration for the `em.iter.*_secs` series,
    /// and the run ledger records the run-wide totals.
    pub fn category_time_us(&self) -> [u64; 5] {
        self.metrics_lock().category_time_us()
    }

    /// Emits one critical-path segment: a `Phase::Complete` event (cat
    /// `"segment"`) covering `[begin_us, end_us)` with its category and the
    /// `seq`/`prev` causality chain. Segment ids are only consumed when a
    /// collector is installed; emission *conditions* at every call site are
    /// structural (config knobs, byte counts, seeded fault events — never
    /// measured durations), so the chain's shape is identical across host
    /// worker counts even though durations are measured.
    fn emit_segment(
        &self,
        label: &str,
        cat: TimeCategory,
        begin_us: u64,
        end_us: u64,
        extra: Vec<(&'static str, obs::ArgValue)>,
    ) {
        if !obs::enabled() {
            return;
        }
        let seq = self.segment_seq.fetch_add(1, Ordering::Relaxed);
        let prev = self.last_segment.swap(seq, Ordering::Relaxed);
        self.with_trace(|c, pid| {
            let mut args = vec![
                ("category", obs::ArgValue::Str(cat.label().to_string())),
                ("seq", obs::ArgValue::U64(seq)),
                ("prev", obs::ArgValue::U64(prev)),
            ];
            args.extend(extra);
            c.complete(pid, "segment", label, begin_us, end_us.saturating_sub(begin_us), args);
        });
    }

    /// Runs `f` with the installed collector and this cluster's virtual
    /// pid, allocating or re-binding the pid first if needed. No-op (and
    /// one atomic load) when tracing is disabled. Never called with the
    /// metrics lock held — `trace` and `metrics` are never nested.
    fn with_trace<R>(&self, f: impl FnOnce(&obs::Collector, u32) -> R) -> Option<R> {
        if !obs::enabled() {
            return None;
        }
        let c = obs::collector()?;
        let key = Arc::as_ptr(&c) as usize;
        let pid = {
            let mut tb = lock_plain(&self.trace);
            match tb.bound {
                Some((k, pid)) if k == key => pid,
                _ => {
                    let label = if tb.label.is_empty() { "cluster" } else { tb.label.as_str() };
                    let pid = c.alloc_virtual_pid(label);
                    tb.bound = Some((key, pid));
                    pid
                }
            }
        };
        Some(f(&c, pid))
    }

    /// Opens a span on this cluster's virtual clock at the current virtual
    /// time. Pair with [`Self::trace_end`]; nesting is checked by the
    /// collector.
    pub fn trace_begin(
        &self,
        cat: &'static str,
        name: &str,
        args: Vec<(&'static str, obs::ArgValue)>,
    ) {
        if !obs::enabled() {
            return;
        }
        let ts = self.virtual_time_us();
        self.with_trace(|c, pid| c.begin_virtual(pid, cat, name, ts, args));
    }

    /// Closes the innermost open virtual span (see [`Self::trace_begin`]).
    pub fn trace_end(
        &self,
        cat: &'static str,
        name: &str,
        args: Vec<(&'static str, obs::ArgValue)>,
    ) {
        if !obs::enabled() {
            return;
        }
        let ts = self.virtual_time_us();
        self.with_trace(|c, pid| c.end_virtual(pid, cat, name, ts, args));
    }

    /// Emits a counter sample on this cluster's virtual clock.
    pub fn trace_counter(&self, name: &str, value: f64) {
        if !obs::enabled() {
            return;
        }
        let ts = self.virtual_time_us();
        self.with_trace(|c, pid| c.counter(pid, name, ts, value));
    }

    /// Emits an instant event on this cluster's virtual clock.
    pub fn trace_instant(&self, cat: &'static str, name: &str) {
        if !obs::enabled() {
            return;
        }
        let ts = self.virtual_time_us();
        self.with_trace(|c, pid| c.instant(pid, cat, name, ts, Vec::new()));
    }

    fn metrics_lock(&self) -> MutexGuard<'_, Metrics> {
        // Metrics are plain data; a panic mid-update can't leave them in a
        // state worth refusing to read.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deterministic per-task failure decision (splitmix64 hash of a
    /// global attempt counter against the configured rate).
    fn task_fails(&self) -> bool {
        if self.cfg.task_failure_rate <= 0.0 {
            return false;
        }
        let i = self.failure_counter.fetch_add(1, Ordering::Relaxed);
        let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.cfg.task_failure_rate
    }

    /// The hardware description.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The byte-sizing policy metered traffic is priced under.
    #[inline]
    pub fn sizing(&self) -> linalg::Sizing {
        self.cfg.byte_sizing
    }

    /// Metered size of `value` under this cluster's sizing policy:
    /// real `Wire::encoded_size()` by default, the legacy `ByteSized`
    /// estimate when the config selects [`linalg::Sizing::Estimated`].
    #[inline]
    pub fn wire_size<T: linalg::Wire>(&self, value: &T) -> u64 {
        self.cfg.byte_sizing.size_of(value)
    }

    /// The negotiated shuffle codec. Only shuffle-family charge sites
    /// consult this; everything else prices exact v2 via [`wire_size`].
    ///
    /// [`wire_size`]: SimCluster::wire_size
    #[inline]
    pub fn wire_codec(&self) -> linalg::WireCodec {
        self.cfg.wire_codec
    }

    /// Metered size of a shuffle-family record: the negotiated codec's
    /// encoded length under [`Sizing::Encoded`](linalg::Sizing::Encoded),
    /// or the flat legacy estimate under `Estimated` (codec-independent,
    /// so the differential-sizing tests keep one fixed reference).
    #[inline]
    pub fn shuffle_size<T: linalg::Wire>(&self, value: &T) -> u64 {
        self.cfg.wire_codec.shuffle_size_of(self.cfg.byte_sizing, value)
    }

    fn faults_lock(&self) -> MutexGuard<'_, FaultDomain> {
        lock_plain(&self.faults)
    }

    /// Installs a fault plan: from the next stage on, the plan's crashes
    /// fire (keyed by global stage index) and the spec's stragglers /
    /// speculation apply. Replaces any previous plan; the recovery log is
    /// kept (it is append-only history).
    pub fn install_fault_plan(
        &self,
        spec: FaultSpec,
        plan: FaultPlan,
    ) -> Result<(), ClusterError> {
        spec.validate()?;
        let mut plan = plan;
        plan.sort();
        let events = plan.events().to_vec();
        self.faults_lock().plan = Some(ActivePlan { spec, events, cursor: 0 });
        Ok(())
    }

    /// The active fault spec, if a plan is installed.
    pub fn fault_spec(&self) -> Option<FaultSpec> {
        self.faults_lock().plan.as_ref().map(|p| p.spec.clone())
    }

    /// Copy of the recovery-event log (structural, deterministic across
    /// host pool sizes).
    pub fn recovery_log(&self) -> Vec<RecoveryEvent> {
        self.faults_lock().log.clone()
    }

    /// The global stage index the *next* stage will run as.
    pub fn next_stage_index(&self) -> u64 {
        self.stage_seq.load(Ordering::Relaxed)
    }

    /// Registers an in-memory cache of `partitions` blocks (one call per
    /// persisted RDD). Cached partition `p` lives on node `p % nodes`; a
    /// crash of that node marks it lost until the owner recomputes it.
    pub fn register_cache(&self, partitions: usize) -> u64 {
        let mut fd = self.faults_lock();
        let id = fd.next_cache_id;
        fd.next_cache_id += 1;
        fd.caches.insert(id, CacheEntry { partitions, lost: Default::default() });
        id
    }

    /// Drains and returns the lost partitions of a cache, ascending. The
    /// caller is expected to recompute them and report each via
    /// [`SimCluster::note_partition_recomputed`].
    pub fn take_lost_partitions(&self, cache: u64) -> Vec<usize> {
        let mut fd = self.faults_lock();
        match fd.caches.get_mut(&cache) {
            Some(entry) => std::mem::take(&mut entry.lost).into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Records a lineage recomputation of one lost cached partition:
    /// `secs` of recompute time are charged to the virtual clock and the
    /// event is appended to the recovery log.
    pub fn note_partition_recomputed(&self, cache: u64, partition: usize, secs: f64) {
        self.faults_lock().log.push(RecoveryEvent::PartitionRecomputed { cache, partition });
        let registry = self.registry();
        registry.counter("faults.partitions_recomputed").inc();
        registry.histogram("faults.lineage_recompute_secs").record(secs);
        let win = self.metrics_lock().advance_cat(secs, TimeCategory::Recovery);
        self.emit_segment(
            "lineage-recompute",
            TimeCategory::Recovery,
            win.0,
            win.1,
            vec![("partition", (partition as u64).into())],
        );
        if obs::enabled() {
            self.trace_instant("fault", &format!("lineage.recompute cache={cache} p={partition}"));
        }
    }

    /// Records an EM checkpoint write (`bytes` already charged via the
    /// DFS put that stored it).
    pub fn note_checkpoint_written(&self, iteration: u64, bytes: u64) {
        self.faults_lock().log.push(RecoveryEvent::CheckpointWritten { iteration });
        let registry = self.registry();
        registry.counter("faults.checkpoint_writes").inc();
        registry.counter("faults.checkpoint_bytes").add(bytes);
        if obs::enabled() {
            self.trace_instant("fault", &format!("checkpoint.write iter={iteration}"));
        }
    }

    /// Records a restart-from-checkpoint.
    pub fn note_checkpoint_restored(&self, iteration: u64) {
        self.faults_lock().log.push(RecoveryEvent::CheckpointRestored { iteration });
        self.registry().counter("faults.checkpoint_restores").inc();
        if obs::enabled() {
            self.trace_instant("fault", &format!("checkpoint.restore iter={iteration}"));
        }
    }

    /// Applies the installed fault plan to one stage's task durations.
    ///
    /// Holds only the fault lock; crash side effects that need other locks
    /// (DFS re-replication, byte charges) are returned in
    /// [`StageFaultEffects`] and applied by the caller afterwards.
    ///
    /// Fault model, all keyed on indices (see `faults` module docs):
    /// * every crash due at this stage fires: task `i` with
    ///   `i % nodes == node` loses its first attempt (duration doubles
    ///   plus the retry delay, plus a DFS re-read for engines that set
    ///   `reexec_read_bytes_per_task`), and every registered cache marks
    ///   partitions `p % nodes == node` lost;
    /// * stragglers (hash-picked per task) run `straggler_slowdown`×
    ///   longer; with speculation a backup launches at the configured
    ///   quantile of the stage's base durations and the first finisher
    ///   wins — the backup's compute is charged as extra CPU either way.
    fn apply_stage_faults(
        &self,
        stage: u64,
        opts: &StageOptions,
        durations: &mut [f64],
    ) -> StageFaultEffects {
        let mut fx = StageFaultEffects::default();
        let nodes = self.cfg.nodes;
        let registry = self.registry();
        let mut fd = self.faults_lock();
        let FaultDomain { plan, log, caches, .. } = &mut *fd;
        let Some(plan) = plan.as_mut() else { return fx };
        let spec = plan.spec.clone();

        for node in plan.due(stage) {
            let node = node % nodes;
            log.push(RecoveryEvent::NodeCrashed { node, stage });
            registry.counter("faults.node_crashes").inc();
            for entry in caches.values_mut() {
                for p in (0..entry.partitions).filter(|p| p % nodes == node) {
                    entry.lost.insert(p);
                }
            }
            for i in (0..durations.len()).filter(|i| i % nodes == node) {
                durations[i] = durations[i] * 2.0 + self.cfg.task_retry_delay_secs;
                log.push(RecoveryEvent::TaskReattempted { stage, task: i });
                registry.counter("faults.task_reattempts").inc();
                fx.reexec_read_bytes += opts.reexec_read_bytes_per_task;
            }
            fx.crashed_nodes.push(node);
        }

        if spec.straggler_rate > 0.0 {
            // Backup launch point: the configured quantile of this stage's
            // (post-crash) durations — "most of the stage has finished".
            let launch = quantile(durations, spec.speculation_quantile);
            for i in 0..durations.len() {
                if !spec.task_straggles(stage, i) {
                    continue;
                }
                registry.counter("faults.stragglers_injected").inc();
                let base = durations[i];
                let slowed = base * spec.straggler_slowdown;
                if spec.speculation {
                    log.push(RecoveryEvent::SpeculativeAttempt { stage, task: i });
                    registry.counter("faults.speculative_attempts").inc();
                    fx.backup_cpu_secs += base;
                    let backup_finish = launch + base;
                    if backup_finish < slowed {
                        registry.counter("faults.speculative_wins").inc();
                        registry
                            .histogram("faults.speculation_saved_secs")
                            .record(slowed - backup_finish);
                        durations[i] = backup_finish;
                    } else {
                        durations[i] = slowed;
                    }
                } else {
                    durations[i] = slowed;
                }
            }
        }
        fx
    }

    /// Stage makespan under the configured timing model: global LPT for
    /// the arithmetic model, the event-driven per-host slot schedule for
    /// the contended one (task `i` pinned to node `i % nodes`).
    fn stage_span(&self, durations: &[f64]) -> (f64, Option<usize>) {
        match self.cfg.timing {
            TimingModel::Uncontended => makespan_with_critical(durations, self.cfg.total_cores()),
            TimingModel::Contended => {
                let (span, critical, events) = host_schedule(
                    durations,
                    self.cfg.nodes,
                    self.cfg.cores_per_node,
                    self.cfg.event_queue_capacity,
                );
                if let Some(c) = &self.contention {
                    lock_plain(&c.state).stats.events += events;
                }
                self.registry().counter("engine.events").add(events);
                (span, critical)
            }
        }
    }

    /// Charges the DFS re-read crashed tasks perform. Under contended
    /// timing the crash interrupted the first split read mid-flight: the
    /// in-flight flow is cancelled at half its solo transfer time and a
    /// full-size reattempt is re-enqueued on the same disk, so the wasted
    /// half shows up in the link statistics (detection latency is already
    /// charged in the task schedule, so the requeue delay here is zero).
    /// The byte *meter* charges the re-read once, same as the arithmetic
    /// model — meters stay identical across timing models.
    fn charge_reexec_read(&self, bytes: u64, crashed_nodes: &[usize]) {
        match self.cfg.timing {
            TimingModel::Uncontended => self.charge_dfs_read_labeled(bytes, "reexec-read"),
            TimingModel::Contended => {
                let topo = &self.contention.as_ref().expect("contended state").topo;
                let shares = Self::uniform_shares(bytes, crashed_nodes.len().max(1));
                let mut flows = Vec::new();
                let mut cancels = Vec::new();
                for (k, &node) in crashed_nodes.iter().enumerate() {
                    let share = shares.get(k).copied().unwrap_or(0);
                    if share == 0 {
                        continue;
                    }
                    let solo_secs = share as f64 / self.cfg.disk_bytes_per_sec;
                    cancels.push(CancelSpec {
                        flow: flows.len(),
                        at_secs: solo_secs * 0.5,
                        requeue_delay_secs: 0.0,
                    });
                    flows.push(FlowSpec::new(share, [topo.disk(node), netsim::NO_LINK]));
                }
                let secs = self.contended_io_secs(&flows, &cancels);
                self.dfs_read_charge_core(bytes, secs, "reexec-read");
            }
        }
    }

    /// Runs a distributed stage: executes every task (really, on the
    /// shared worker pool), measures per-task durations, and advances the
    /// virtual clock by the makespan of those durations scheduled onto
    /// the cluster's virtual cores (LPT by default, the event-driven
    /// per-host slot schedule under contended timing). Results come back
    /// in task order.
    pub fn run_stage<T, F>(&self, opts: StageOptions, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let stage_idx = self.stage_seq.fetch_add(1, Ordering::Relaxed);
        if n == 0 {
            self.metrics_lock().stages.push(StageRecord {
                label: opts.label,
                tasks: 0,
                compute_secs: 0.0,
                cpu_secs: 0.0,
            });
            return Vec::new();
        }

        let _host_span = obs::span_lazy("stage", || format!("stage:{}", opts.label));
        let timed: Vec<(f64, T)> = self.pool.run(
            tasks
                .into_iter()
                .map(|task| {
                    move || {
                        let start = Instant::now();
                        let out = task();
                        (start.elapsed().as_secs_f64(), out)
                    }
                })
                .collect(),
        );
        let mut durations = Vec::with_capacity(n);
        let mut results = Vec::with_capacity(n);
        for (secs, out) in timed {
            durations.push(secs);
            results.push(out);
        }

        let cpu_secs: f64 = durations.iter().sum();
        // Failure injection: a failed first attempt is re-executed — same
        // result (the retry recomputes it), twice the duration plus the
        // rescheduling delay. Charged in the schedule, invisible in the
        // output, exactly like the platforms the paper targets.
        let mut with_overhead: Vec<f64> = durations
            .iter()
            .map(|d| {
                let base = d + opts.task_overhead_secs;
                if self.task_fails() {
                    base * 2.0 + self.cfg.task_retry_delay_secs
                } else {
                    base
                }
            })
            .collect();
        // Makespan of the bare measured durations and of the overhead-laden
        // (pre-fault) schedule: the anchors of the cpu / scheduler-wait /
        // recovery decomposition below.
        let base_span = self.stage_span(&durations).0;
        let overhead_span = self.stage_span(&with_overhead).0;
        let has_fault_plan = self.faults_lock().plan.is_some();
        // Stateful fault plan: crashes, stragglers, speculation. Only the
        // schedule and the recovery log change — results never do.
        let fx = self.apply_stage_faults(stage_idx, &opts, &mut with_overhead);
        let cpu_secs = cpu_secs + fx.backup_cpu_secs;
        for &node in &fx.crashed_nodes {
            if obs::enabled() {
                self.trace_instant("fault", &format!("node.crash node={node}"));
            }
            let (events, replication_bytes) = self.dfs.on_node_crash(self, node);
            if replication_bytes > 0 {
                self.registry().counter("faults.replication_bytes").add(replication_bytes);
            }
            let lost = events
                .iter()
                .filter(|e| matches!(e, RecoveryEvent::BlockLost { .. }))
                .count() as u64;
            if lost > 0 {
                self.registry().counter("faults.blocks_lost").add(lost);
            }
            self.faults_lock().log.extend(events);
        }
        if fx.reexec_read_bytes > 0 {
            self.charge_reexec_read(fx.reexec_read_bytes, &fx.crashed_nodes);
        }
        let (compute_secs, critical_task) = self.stage_span(&with_overhead);

        // Decompose the stage makespan into tiled categories. LPT is not
        // monotone under duration increases (Graham anomalies), so each
        // term is clipped to keep every part non-negative; the three parts
        // sum to `compute_secs` exactly by construction.
        let cpu_part = base_span.min(compute_secs);
        let sched_anchor = overhead_span.min(compute_secs);
        let sched_part = (sched_anchor - cpu_part).max(0.0);
        let recovery_part = compute_secs - cpu_part.max(sched_anchor);
        // Segment *presence* is structural: overhead/retry knobs and the
        // fault plan are config, never measured time. When a knob is off
        // its part is exactly 0.0 (bitwise-equal makespans), so skipping
        // the advance changes nothing.
        let emit_sched = opts.task_overhead_secs > 0.0 || self.cfg.task_failure_rate > 0.0;
        let emit_recovery = has_fault_plan;

        let label = match self.job_scope() {
            Some(job) => format!("{job}/{}", opts.label),
            None => opts.label,
        };
        let record = StageRecord { label, tasks: n, compute_secs, cpu_secs };
        let utilization = record.utilization(self.cfg.total_cores());
        let (begin_us, end_us, cpu_win, sched_win, rec_win);
        {
            let mut m = self.metrics_lock();
            cpu_win = m.advance_cat(cpu_part, TimeCategory::Cpu);
            sched_win = if emit_sched {
                m.advance_cat(sched_part, TimeCategory::Scheduler)
            } else {
                (cpu_win.1, cpu_win.1)
            };
            rec_win = if emit_recovery {
                m.advance_cat(recovery_part, TimeCategory::Recovery)
            } else {
                (sched_win.1, sched_win.1)
            };
            begin_us = cpu_win.0;
            end_us = rec_win.1;
            m.registry().histogram("stage.utilization").record(utilization);
            m.stages.push(record.clone());
        }
        if obs::enabled() {
            self.with_trace(|c, pid| {
                c.begin_virtual(
                    pid,
                    "stage",
                    &record.label,
                    begin_us,
                    vec![
                        ("tasks", (n as u64).into()),
                        ("cpu_secs", record.cpu_secs.into()),
                    ],
                );
            });
            // Causality segments nest inside the stage span (emitted
            // between its Begin and End): barrier first, then the waits
            // the barrier exposed.
            let mut cpu_args: Vec<(&'static str, obs::ArgValue)> = vec![
                ("tasks", (n as u64).into()),
                ("edge", "barrier".into()),
            ];
            if let Some(t) = critical_task {
                cpu_args.push(("critical_task", (t as u64).into()));
            }
            self.emit_segment(
                &format!("stage:{}", record.label),
                TimeCategory::Cpu,
                cpu_win.0,
                cpu_win.1,
                cpu_args,
            );
            if emit_sched {
                self.emit_segment(
                    "task-launch",
                    TimeCategory::Scheduler,
                    sched_win.0,
                    sched_win.1,
                    vec![("tasks", (n as u64).into())],
                );
            }
            if emit_recovery {
                self.emit_segment(
                    "stage-recovery",
                    TimeCategory::Recovery,
                    rec_win.0,
                    rec_win.1,
                    vec![("crashed_nodes", (fx.crashed_nodes.len() as u64).into())],
                );
            }
            self.with_trace(|c, pid| {
                c.end_virtual(
                    pid,
                    "stage",
                    &record.label,
                    end_us,
                    vec![("utilization", utilization.into())],
                );
            });
        }
        results
    }

    /// Runs a driver-local computation, measuring it and charging the
    /// virtual clock one core's worth of time (the driver is a single
    /// process).
    pub fn run_driver<T>(&self, label: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let label = label.into();
        let _host_span = obs::span_lazy("driver", || format!("driver:{label}"));
        let start = Instant::now();
        let out = f();
        let secs = start.elapsed().as_secs_f64();
        let (begin_us, end_us);
        {
            let mut m = self.metrics_lock();
            let win = m.advance_cat(secs, TimeCategory::Cpu);
            begin_us = win.0;
            end_us = win.1;
            m.stages.push(StageRecord {
                label: label.clone(),
                tasks: 1,
                compute_secs: secs,
                cpu_secs: secs,
            });
        }
        if obs::enabled() {
            self.with_trace(|c, pid| {
                c.begin_virtual(pid, "driver", &label, begin_us, Vec::new());
            });
            self.emit_segment(
                &format!("driver:{label}"),
                TimeCategory::Cpu,
                begin_us,
                end_us,
                vec![("edge", "driver-step".into())],
            );
            self.with_trace(|c, pid| {
                c.end_virtual(pid, "driver", &label, end_us, Vec::new());
            });
        }
        out
    }

    /// Aggregate network bandwidth: transfers fan out across node links
    /// (shuffles and accumulator pushes are all-to-all / tree-shaped, not a
    /// single pipe), so adding nodes adds bandwidth. This is also what
    /// makes speedup experiments behave like the paper's Table 4: both
    /// compute *and* communication scale with the cluster.
    fn network_bw(&self) -> f64 {
        self.cfg.network_bytes_per_sec * self.cfg.nodes as f64
    }

    /// Aggregate disk bandwidth: the DFS stripes across every node's disks.
    fn disk_bw(&self) -> f64 {
        self.cfg.disk_bytes_per_sec * self.cfg.nodes as f64
    }

    /// Splits `bytes` into one share per entry (the remainder spread over
    /// the first entries) — the uniform per-node decomposition that makes
    /// the event-driven model reproduce the arithmetic charges: `n` equal
    /// flows on `n` disjoint links each run at full link rate, so the
    /// makespan is `ceil(bytes/n) / link_rate ≈ bytes / aggregate_rate`
    /// (off by at most one byte's transfer time, far under 1 µs).
    fn uniform_shares(bytes: u64, n: usize) -> Vec<u64> {
        let n64 = n as u64;
        let (base, rem) = (bytes / n64, bytes % n64);
        (0..n64).map(|i| base + u64::from(i < rem)).collect()
    }

    /// Runs `flows` (+ optional `cancels`) through the shared-bandwidth
    /// simulator, folds the outcome into the per-link statistics and
    /// engine counters, and returns the virtual seconds the transfer
    /// group took. Contended timing only.
    fn contended_io_secs(&self, flows: &[FlowSpec], cancels: &[CancelSpec]) -> f64 {
        let c = self.contention.as_ref().expect("contended_io_secs needs Contended timing");
        let out = netsim::simulate(&c.topo, flows, cancels, self.cfg.event_queue_capacity);
        c.absorb(&out);
        let registry = self.registry();
        registry.counter("engine.events").add(out.events);
        registry.counter("engine.resolves").add(out.resolves);
        out.makespan_secs
    }

    /// Virtual seconds for network traffic given per-endpoint byte counts
    /// (endpoint `p` maps to node `p % nodes`' downlink).
    fn network_secs(&self, total: u64, per_endpoint: Option<&[u64]>) -> f64 {
        match self.cfg.timing {
            TimingModel::Uncontended => total as f64 / self.network_bw(),
            TimingModel::Contended => {
                let topo = &self.contention.as_ref().expect("contended state").topo;
                let (fabric, n) = (topo.fabric(), topo.nodes());
                let uniform;
                let shares = match per_endpoint {
                    Some(s) => s,
                    None => {
                        uniform = Self::uniform_shares(total, n);
                        &uniform
                    }
                };
                let flows: Vec<FlowSpec> = shares
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b > 0)
                    .map(|(p, &b)| FlowSpec::new(b, [topo.downlink(p), fabric]))
                    .collect();
                self.contended_io_secs(&flows, &[])
            }
        }
    }

    /// Virtual seconds for DFS traffic given per-endpoint byte counts
    /// (endpoint `p` maps to node `p % nodes`' disk).
    fn disk_secs(&self, total: u64, per_endpoint: Option<&[u64]>) -> f64 {
        match self.cfg.timing {
            TimingModel::Uncontended => total as f64 / self.disk_bw(),
            TimingModel::Contended => {
                let topo = &self.contention.as_ref().expect("contended state").topo;
                let n = topo.nodes();
                let uniform;
                let shares = match per_endpoint {
                    Some(s) => s,
                    None => {
                        uniform = Self::uniform_shares(total, n);
                        &uniform
                    }
                };
                let flows: Vec<FlowSpec> = shares
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b > 0)
                    .map(|(p, &b)| FlowSpec::new(b, [topo.disk(p), netsim::NO_LINK]))
                    .collect();
                self.contended_io_secs(&flows, &[])
            }
        }
    }

    /// Meters network bytes and advances the clock by a pre-computed
    /// transfer time — the shared tail of every network charge site.
    fn network_charge_core(&self, bytes: u64, secs: f64, label: &str) {
        let total;
        let win;
        {
            let mut m = self.metrics_lock();
            m.add_network(bytes);
            win = m.advance_cat(secs, TimeCategory::Network);
            total = m.network_bytes.get();
        }
        self.trace_counter("cluster.network_bytes", total as f64);
        if bytes > 0 {
            self.emit_segment(
                label,
                TimeCategory::Network,
                win.0,
                win.1,
                vec![("bytes", bytes.into())],
            );
        }
    }

    /// Meters `bytes` crossing the network (shuffle traffic) and advances
    /// the clock by the transfer time: aggregate-bandwidth arithmetic
    /// under the default timing model, a balanced per-node flow set under
    /// the contended one (same time to within a byte's transfer).
    pub fn charge_network(&self, bytes: u64) {
        self.charge_network_labeled(bytes, "network");
    }

    /// [`charge_network`](Self::charge_network) with a caller-supplied
    /// segment label so the critical-path table names the transfer
    /// ("shuffle", "re-replicate", ...), not just its category.
    pub fn charge_network_labeled(&self, bytes: u64, label: &str) {
        let secs = self.network_secs(bytes, None);
        self.network_charge_core(bytes, secs, label);
    }

    /// Network charge with an explicit per-endpoint byte distribution:
    /// entry `p` lands on node `p % nodes`' downlink. Under the default
    /// timing model this is exactly `charge_network_labeled` of the sum;
    /// under contended timing a skewed distribution saturates the loaded
    /// links while others idle, so the transfer takes the *slowest
    /// link's* time instead of the aggregate average — the contention the
    /// arithmetic model cannot express.
    pub fn charge_network_flows(&self, per_endpoint: &[u64], label: &str) {
        let bytes: u64 = per_endpoint.iter().sum();
        let secs = self.network_secs(bytes, Some(per_endpoint));
        self.network_charge_core(bytes, secs, label);
    }

    /// Meters DFS write bytes and advances the clock (shared tail).
    fn dfs_write_charge_core(&self, bytes: u64, secs: f64, label: &str) {
        let total;
        let win;
        {
            let mut m = self.metrics_lock();
            m.add_dfs_write(bytes);
            win = m.advance_cat(secs, TimeCategory::Disk);
            total = m.dfs_bytes_written.get();
        }
        self.trace_counter("cluster.dfs_bytes_written", total as f64);
        if bytes > 0 {
            self.emit_segment(
                label,
                TimeCategory::Disk,
                win.0,
                win.1,
                vec![("bytes", bytes.into())],
            );
        }
    }

    /// Meters `bytes` written to the distributed filesystem.
    pub fn charge_dfs_write(&self, bytes: u64) {
        self.charge_dfs_write_labeled(bytes, "dfs-write");
    }

    /// [`charge_dfs_write`](Self::charge_dfs_write) with a segment label.
    pub fn charge_dfs_write_labeled(&self, bytes: u64, label: &str) {
        let secs = self.disk_secs(bytes, None);
        self.dfs_write_charge_core(bytes, secs, label);
    }

    /// DFS write with an explicit per-endpoint distribution (entry `p` →
    /// node `p % nodes`' disk); see [`Self::charge_network_flows`].
    pub fn charge_dfs_write_flows(&self, per_endpoint: &[u64], label: &str) {
        let bytes: u64 = per_endpoint.iter().sum();
        let secs = self.disk_secs(bytes, Some(per_endpoint));
        self.dfs_write_charge_core(bytes, secs, label);
    }

    /// Meters a broadcast of `bytes` to every worker node (Spark torrent
    /// broadcast / Hadoop distributed cache). The payload crosses the
    /// network once per node and counts as intermediate data — this is
    /// how sPCA's per-iteration `CM` matrix is charged. Under contended
    /// timing the fanout is one full-size flow per downlink; all `n` run
    /// at link rate concurrently, reproducing the arithmetic charge
    /// exactly.
    pub fn charge_broadcast(&self, bytes: u64) {
        let fanout = bytes.saturating_mul(self.cfg.nodes as u64);
        let secs = match self.cfg.timing {
            TimingModel::Uncontended => fanout as f64 / self.network_bw(),
            TimingModel::Contended => {
                let per_node = vec![bytes; self.cfg.nodes];
                self.network_secs(fanout, Some(&per_node))
            }
        };
        let total;
        let win;
        {
            let mut m = self.metrics_lock();
            m.add_network(fanout);
            win = m.advance_cat(secs, TimeCategory::Network);
            total = m.network_bytes.get();
        }
        self.trace_counter("cluster.network_bytes", total as f64);
        if fanout > 0 {
            self.emit_segment(
                "broadcast",
                TimeCategory::Network,
                win.0,
                win.1,
                vec![("bytes", fanout.into())],
            );
        }
    }

    /// Meters DFS read bytes and advances the clock (shared tail).
    fn dfs_read_charge_core(&self, bytes: u64, secs: f64, label: &str) {
        let total;
        let win;
        {
            let mut m = self.metrics_lock();
            m.add_dfs_read(bytes);
            win = m.advance_cat(secs, TimeCategory::Disk);
            total = m.dfs_bytes_read.get();
        }
        self.trace_counter("cluster.dfs_bytes_read", total as f64);
        if bytes > 0 {
            self.emit_segment(
                label,
                TimeCategory::Disk,
                win.0,
                win.1,
                vec![("bytes", bytes.into())],
            );
        }
    }

    /// Meters `bytes` read back from the distributed filesystem.
    pub fn charge_dfs_read(&self, bytes: u64) {
        self.charge_dfs_read_labeled(bytes, "dfs-read");
    }

    /// [`charge_dfs_read`](Self::charge_dfs_read) with a segment label.
    pub fn charge_dfs_read_labeled(&self, bytes: u64, label: &str) {
        let secs = self.disk_secs(bytes, None);
        self.dfs_read_charge_core(bytes, secs, label);
    }

    /// DFS read with an explicit per-endpoint distribution (entry `p` →
    /// node `p % nodes`' disk); see [`Self::charge_network_flows`].
    pub fn charge_dfs_read_flows(&self, per_endpoint: &[u64], label: &str) {
        let bytes: u64 = per_endpoint.iter().sum();
        let secs = self.disk_secs(bytes, Some(per_endpoint));
        self.dfs_read_charge_core(bytes, secs, label);
    }

    /// Per-link contention statistics. Empty under the default timing
    /// model (the arithmetic charges never touch individual links).
    pub fn link_stats(&self) -> Vec<LinkStat> {
        match &self.contention {
            None => Vec::new(),
            Some(c) => {
                let st = lock_plain(&c.state);
                (0..c.topo.len() as u32)
                    .map(|l| LinkStat {
                        label: c.topo.label(l),
                        capacity: c.topo.capacity(l),
                        bytes: st.link_bytes[l as usize],
                        busy_secs: st.link_busy_secs[l as usize],
                        peak_util: st.link_peak_util[l as usize],
                    })
                    .collect()
            }
        }
    }

    /// Whole-run event-engine totals, or `None` under the default timing
    /// model.
    pub fn engine_stats(&self) -> Option<EngineStats> {
        self.contention.as_ref().map(|c| lock_plain(&c.state).stats)
    }

    /// Advances the virtual clock by a flat amount (job-initialization
    /// overheads and the like). Charged to the scheduler category: flat
    /// advances model framework overhead, not productive compute.
    pub fn advance_time(&self, secs: f64) {
        self.advance_time_labeled(secs, "overhead");
    }

    /// [`advance_time`](Self::advance_time) with a segment label.
    pub fn advance_time_labeled(&self, secs: f64, label: &str) {
        let win = self.metrics_lock().advance_cat(secs, TimeCategory::Scheduler);
        if secs > 0.0 {
            self.emit_segment(label, TimeCategory::Scheduler, win.0, win.1, Vec::new());
        }
    }

    /// Tracks a driver-side allocation against the configured driver
    /// memory. The returned guard releases the bytes on drop; peak usage is
    /// recorded for Figure 8.
    pub fn alloc_driver(&self, bytes: u64) -> Result<DriverAlloc<'_>, ClusterError> {
        let mut m = self.metrics_lock();
        let in_use = m.driver_bytes;
        if in_use + bytes > self.cfg.driver_memory {
            return Err(ClusterError::DriverOom {
                requested: bytes,
                in_use,
                limit: self.cfg.driver_memory,
            });
        }
        m.driver_bytes = in_use + bytes;
        m.driver_peak_bytes = m.driver_peak_bytes.max(in_use + bytes);
        m.registry().gauge("cluster.driver_peak_bytes").set_max((in_use + bytes) as f64);
        Ok(DriverAlloc { cluster: self, bytes })
    }

    /// Copy of all metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics_lock().snapshot()
    }

    /// Resets clock, meters, and stage history (driver-live bytes are kept,
    /// since guards may still be outstanding).
    pub fn reset_metrics(&self) {
        self.metrics_lock().reset();
    }
}

impl fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCluster")
            .field("nodes", &self.cfg.nodes)
            .field("cores_per_node", &self.cfg.cores_per_node)
            .field("pool_workers", &self.pool.workers())
            .finish()
    }
}

/// RAII guard for a tracked driver allocation.
#[derive(Debug)]
pub struct DriverAlloc<'a> {
    cluster: &'a SimCluster,
    bytes: u64,
}

impl DriverAlloc<'_> {
    /// Size of the tracked allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for DriverAlloc<'_> {
    fn drop(&mut self) {
        let mut m = self.cluster.metrics_lock();
        m.driver_bytes = m.driver_bytes.saturating_sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultSpec};

    fn small_cluster() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(2))
    }

    #[test]
    fn run_stage_returns_results_in_order() {
        let c = small_cluster();
        let tasks: Vec<_> = (0..10).map(|i| move || i * i).collect();
        let out = c.run_stage(StageOptions::new("squares"), tasks);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_stage_records_metrics() {
        let c = small_cluster();
        let tasks: Vec<_> = (0..4).map(|_| move || std::hint::black_box(0)).collect();
        let _ = c.run_stage(StageOptions::new("noop").with_task_overhead(1.0), tasks);
        let m = c.metrics();
        assert_eq!(m.stages.len(), 1);
        assert_eq!(m.stages[0].tasks, 4);
        // 4 tasks × 1s overhead on 4 cores → ~1s of virtual time.
        assert!(m.virtual_time_secs >= 1.0);
        assert!(m.virtual_time_secs < 1.5, "got {}", m.virtual_time_secs);
    }

    #[test]
    fn more_cores_means_less_virtual_time() {
        let run = |cores: usize| {
            let c = SimCluster::new(
                ClusterConfig::paper_cluster().with_nodes(1).with_cores_per_node(cores),
            );
            let tasks: Vec<_> = (0..64).map(|_| move || ()).collect();
            let _ = c.run_stage(StageOptions::new("t").with_task_overhead(0.5), tasks);
            c.metrics().virtual_time_secs
        };
        let t8 = run(8);
        let t32 = run(32);
        assert!(t8 > 3.0 * t32, "t8={t8} t32={t32}");
    }

    #[test]
    fn empty_stage_is_recorded_but_free() {
        let c = small_cluster();
        let out: Vec<i32> = c.run_stage(StageOptions::new("empty"), Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
        assert_eq!(c.metrics().stages.len(), 1);
        assert_eq!(c.metrics().virtual_time_secs, 0.0);
    }

    #[test]
    fn stage_results_identical_across_pool_sizes() {
        // The determinism contract: only host wall time may depend on the
        // pool; stage outputs must be bit-for-bit identical on 1, 2, and 8
        // workers.
        let run_with = |workers: usize| {
            let c = SimCluster::new_with_pool(
                ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(2),
                Arc::new(WorkerPool::new(workers)),
            );
            assert_eq!(c.pool().workers(), workers.max(1));
            let tasks: Vec<_> = (0..48u64)
                .map(|i| {
                    move || {
                        // Nontrivial float reduction: order-sensitive if the
                        // substrate ever reassigned work by worker count.
                        (0..200).map(|k| ((i * 200 + k) as f64).sqrt()).sum::<f64>().to_bits()
                    }
                })
                .collect();
            c.run_stage(StageOptions::new("det"), tasks)
        };
        let one = run_with(1);
        let two = run_with(2);
        let eight = run_with(8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn network_and_dfs_charges_accumulate() {
        // small_cluster has 2 nodes: aggregate bandwidth is 2x the link.
        let c = small_cluster();
        c.charge_network(240_000_000); // 1 virtual second at 2 x 120 MB/s
        c.charge_dfs_write(200_000_000); // 1 virtual second at 2 x 100 MB/s
        c.charge_dfs_read(100_000_000); // 0.5 virtual seconds
        let m = c.metrics();
        assert_eq!(m.network_bytes, 240_000_000);
        assert_eq!(m.dfs_bytes_written, 200_000_000);
        assert_eq!(m.dfs_bytes_read, 100_000_000);
        assert_eq!(m.intermediate_bytes, 440_000_000);
        assert!((m.virtual_time_secs - 2.5).abs() < 1e-9);
    }

    #[test]
    fn broadcast_charges_once_per_node() {
        let c = small_cluster(); // 2 nodes
        c.charge_broadcast(1_000);
        let m = c.metrics();
        assert_eq!(m.network_bytes, 2_000);
        assert_eq!(m.intermediate_bytes, 2_000);
        assert!(m.virtual_time_secs > 0.0);
    }

    #[test]
    fn bandwidth_scales_with_node_count() {
        let time_for = |nodes: usize| {
            let c = SimCluster::new(ClusterConfig::paper_cluster().with_nodes(nodes));
            c.charge_network(960_000_000);
            c.metrics().virtual_time_secs
        };
        let t2 = time_for(2);
        let t8 = time_for(8);
        assert!((t2 / t8 - 4.0).abs() < 1e-9, "4x nodes -> 4x aggregate bandwidth");
    }

    #[test]
    fn driver_allocation_tracks_peak_and_frees() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_driver_memory(1000));
        {
            let _a = c.alloc_driver(600).unwrap();
            let _b = c.alloc_driver(300).unwrap();
            assert_eq!(c.metrics().driver_bytes, 900);
        }
        let m = c.metrics();
        assert_eq!(m.driver_bytes, 0, "guards must free on drop");
        assert_eq!(m.driver_peak_bytes, 900);
    }

    #[test]
    fn driver_oom_is_reported() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_driver_memory(1000));
        let _a = c.alloc_driver(800).unwrap();
        let err = c.alloc_driver(300).map(|g| g.bytes()).unwrap_err();
        assert_eq!(err, ClusterError::DriverOom { requested: 300, in_use: 800, limit: 1000 });
    }

    #[test]
    fn run_driver_charges_clock() {
        let c = small_cluster();
        let v = c.run_driver("local", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(c.metrics().stages.len(), 1);
    }

    #[test]
    fn reset_clears_meters_but_keeps_live_driver_bytes() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_driver_memory(1000));
        let guard = c.alloc_driver(500).unwrap();
        c.charge_network(1_000_000);
        c.reset_metrics();
        let m = c.metrics();
        assert_eq!(m.network_bytes, 0);
        assert_eq!(m.virtual_time_secs, 0.0);
        assert_eq!(m.driver_bytes, 500);
        drop(guard);
        assert_eq!(c.metrics().driver_bytes, 0);
    }

    #[test]
    fn failure_injection_slows_but_never_corrupts() {
        let run = |rate: f64| {
            let c = SimCluster::new(
                ClusterConfig::paper_cluster()
                    .with_nodes(1)
                    .with_cores_per_node(4)
                    .with_task_failure_rate(rate),
            );
            let tasks: Vec<_> = (0..100).map(|i| move || i * 3).collect();
            let out = c.run_stage(StageOptions::new("t").with_task_overhead(0.5), tasks);
            (out, c.metrics().virtual_time_secs)
        };
        let (ok_out, ok_time) = run(0.0);
        let (faulty_out, faulty_time) = run(0.3);
        assert_eq!(ok_out, faulty_out, "retries must be invisible in results");
        assert!(
            faulty_time > ok_time * 1.1,
            "30% failures must cost time: {ok_time} vs {faulty_time}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid cluster config")]
    fn bad_config_fails_at_construction() {
        let mut cfg = ClusterConfig::paper_cluster();
        cfg.task_failure_rate = 1.0;
        let _ = SimCluster::new(cfg);
    }

    #[test]
    fn node_crash_reattempts_tasks_and_keeps_results() {
        let run = |plan: FaultPlan| {
            let c = small_cluster(); // 2 nodes x 2 cores
            c.install_fault_plan(FaultSpec::new(3), plan).unwrap();
            let tasks: Vec<_> = (0..8).map(|i| move || i * 7).collect();
            let out = c.run_stage(StageOptions::new("t").with_task_overhead(1.0), tasks);
            (out, c.metrics().virtual_time_secs, c.recovery_log())
        };
        let (clean_out, clean_time, clean_log) = run(FaultPlan::new());
        assert!(clean_log.is_empty());
        let (out, time, log) = run(FaultPlan::new().with_crash(1, 0));
        assert_eq!(out, clean_out, "recovery must be invisible in results");
        assert!(time > clean_time, "a crash must cost time: {clean_time} vs {time}");
        // Node 1 of 2 owns tasks 1,3,5,7: one crash event + 4 reattempts.
        assert_eq!(log[0], RecoveryEvent::NodeCrashed { node: 1, stage: 0 });
        let reattempts: Vec<usize> = log
            .iter()
            .filter_map(|e| match e {
                RecoveryEvent::TaskReattempted { task, .. } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(reattempts, vec![1, 3, 5, 7]);
    }

    #[test]
    fn crash_marks_cached_partitions_lost() {
        let c = small_cluster(); // 2 nodes
        c.install_fault_plan(FaultSpec::new(0), FaultPlan::new().with_crash(0, 0)).unwrap();
        let cache = c.register_cache(6);
        assert!(c.take_lost_partitions(cache).is_empty(), "nothing lost before the crash");
        let _ = c.run_stage(StageOptions::new("t"), vec![|| 1, || 2]);
        // Node 0 owns partitions 0, 2, 4; the drain is one-shot.
        assert_eq!(c.take_lost_partitions(cache), vec![0, 2, 4]);
        assert!(c.take_lost_partitions(cache).is_empty());
    }

    #[test]
    fn crash_triggers_dfs_recovery() {
        let c = SimCluster::new(
            ClusterConfig::paper_cluster().with_nodes(2).with_dfs_replication(1),
        );
        c.dfs().put(&c, "a", 100);
        c.dfs().put(&c, "b", 100);
        c.install_fault_plan(FaultSpec::new(0), FaultPlan::new().with_crash(0, 0)).unwrap();
        let _ = c.run_stage(StageOptions::new("t"), vec![|| ()]);
        let log = c.recovery_log();
        assert!(log.contains(&RecoveryEvent::NodeCrashed { node: 0, stage: 0 }));
        // With factor 1 on 2 nodes, each file has a single replica; the
        // ones on node 0 are lost and show up in the log.
        let lost: Vec<_> = log
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::BlockLost { .. }))
            .collect();
        let survivors = c.dfs().file_count();
        assert_eq!(lost.len() + survivors, 2, "every file is either lost or intact");
    }

    #[test]
    fn speculation_beats_plain_stragglers() {
        let run = |speculation: bool| {
            let c = SimCluster::new(
                ClusterConfig::paper_cluster().with_nodes(1).with_cores_per_node(4),
            );
            let spec = FaultSpec::new(9)
                .with_straggler_rate(0.25)
                .with_straggler_slowdown(8.0)
                .with_speculation(speculation);
            c.install_fault_plan(spec, FaultPlan::new()).unwrap();
            let tasks: Vec<_> = (0..32).map(|i| move || i).collect();
            let out = c.run_stage(StageOptions::new("t").with_task_overhead(1.0), tasks);
            (out, c.metrics().virtual_time_secs, c.registry())
        };
        let (out_plain, t_plain, _) = run(false);
        let (out_spec, t_spec, reg) = run(true);
        assert_eq!(out_plain, out_spec);
        assert!(
            t_spec < t_plain,
            "speculation must cut straggler time: {t_spec} vs {t_plain}"
        );
        assert!(reg.counter("faults.speculative_wins").get() > 0);
    }

    #[test]
    fn recovery_log_identical_across_pool_sizes() {
        let run_with = |workers: usize| {
            let c = SimCluster::new_with_pool(
                ClusterConfig::paper_cluster().with_nodes(2).with_cores_per_node(2),
                Arc::new(WorkerPool::new(workers)),
            );
            let spec = FaultSpec::new(5)
                .with_straggler_rate(0.3)
                .with_straggler_slowdown(4.0)
                .with_speculation(true);
            c.install_fault_plan(spec, FaultPlan::new().with_crash(1, 1)).unwrap();
            let cache = c.register_cache(8);
            for s in 0..3 {
                let tasks: Vec<_> = (0..16u64).map(|i| move || i + s).collect();
                let _ = c.run_stage(StageOptions::new("t"), tasks);
            }
            let _ = c.take_lost_partitions(cache);
            c.recovery_log()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2));
        assert_eq!(one, run_with(8));
        assert!(one.iter().any(|e| matches!(e, RecoveryEvent::NodeCrashed { .. })));
    }

    #[test]
    fn contended_uniform_charges_match_arithmetic() {
        let mk = |t| SimCluster::new(ClusterConfig::scaled_cluster().with_timing(t));
        let a = mk(TimingModel::Uncontended);
        let b = mk(TimingModel::Contended);
        for c in [&a, &b] {
            c.charge_network(3_000_001);
            c.charge_dfs_write(1_200_007);
            c.charge_dfs_read(600_013);
            c.charge_broadcast(10_000);
        }
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma.network_bytes, mb.network_bytes, "meters are timing-invariant");
        assert_eq!(ma.dfs_bytes_written, mb.dfs_bytes_written);
        assert_eq!(ma.dfs_bytes_read, mb.dfs_bytes_read);
        // Four uniform charges, each reproduced within 1 µs.
        assert!(
            (ma.virtual_time_secs - mb.virtual_time_secs).abs() < 4e-6,
            "uncontended {} vs contended {}",
            ma.virtual_time_secs,
            mb.virtual_time_secs
        );
    }

    #[test]
    fn skewed_flows_contend_only_under_contended_timing() {
        // All 8 MB land on one endpoint: the arithmetic model still
        // charges aggregate bandwidth; the event model serializes on that
        // node's downlink — 8x slower on an 8-node cluster.
        let skew = [8_000_000u64, 0, 0, 0, 0, 0, 0, 0];
        let a = SimCluster::new(ClusterConfig::scaled_cluster());
        a.charge_network_flows(&skew, "skew");
        let b = SimCluster::new(
            ClusterConfig::scaled_cluster().with_timing(TimingModel::Contended),
        );
        b.charge_network_flows(&skew, "skew");
        let (ta, tb) = (a.metrics().virtual_time_secs, b.metrics().virtual_time_secs);
        assert!((tb / ta - 8.0).abs() < 1e-3, "skew must cost 8x: {ta} vs {tb}");
        assert_eq!(a.metrics().network_bytes, b.metrics().network_bytes);
    }

    #[test]
    fn link_stats_track_utilization_within_capacity() {
        let c = SimCluster::new(
            ClusterConfig::scaled_cluster().with_timing(TimingModel::Contended),
        );
        c.charge_network_flows(&[5_000_000, 1_000_000, 0, 0, 250_000, 0, 0, 0], "shuffle");
        c.charge_dfs_write(2_400_000);
        let stats = c.link_stats();
        assert_eq!(stats.len(), 25, "fabric + 8 up + 8 down + 8 disks");
        assert!(stats.iter().all(|l| l.peak_util <= 1.0 + 1e-9), "never over capacity");
        assert!(stats.iter().any(|l| l.peak_util > 0.99), "the loaded links saturate");
        let engine = c.engine_stats().expect("contended mode has engine stats");
        assert!(engine.events > 0 && engine.resolves > 0);
        // Uncontended clusters report no link activity at all.
        let u = SimCluster::new(ClusterConfig::scaled_cluster());
        u.charge_network(1_000_000);
        assert!(u.link_stats().is_empty());
        assert!(u.engine_stats().is_none());
    }

    #[test]
    fn contended_stage_results_and_faults_stay_deterministic() {
        let run = |timing| {
            let c = SimCluster::new(
                ClusterConfig::scaled_cluster()
                    .with_nodes(2)
                    .with_cores_per_node(2)
                    .with_timing(timing),
            );
            c.install_fault_plan(FaultSpec::new(3), FaultPlan::new().with_crash(1, 0)).unwrap();
            let tasks: Vec<_> = (0..8).map(|i| move || i * 7).collect();
            let out = c.run_stage(
                StageOptions::new("t").with_task_overhead(0.1).with_reexec_read_bytes(1000),
                tasks,
            );
            (out, c.recovery_log())
        };
        let (out_u, log_u) = run(TimingModel::Uncontended);
        let (out_c, log_c) = run(TimingModel::Contended);
        assert_eq!(out_u, out_c, "results are timing-model-invariant");
        assert_eq!(log_u, log_c, "recovery logs are structural, not timed");
    }

    #[test]
    fn stage_results_survive_host_oversubscription() {
        // More tasks than pool workers: the queue must drain fully.
        let c = small_cluster();
        let tasks: Vec<_> = (0..200).map(|i| move || i).collect();
        let out = c.run_stage(StageOptions::new("many"), tasks);
        assert_eq!(out.len(), 200);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }
}
