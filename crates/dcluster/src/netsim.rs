//! Shared-bandwidth network/disk model: concurrent transfers split link
//! capacity max-min-fairly, with rates re-solved on every transfer start,
//! finish, and cancellation.
//!
//! # Topology
//!
//! The cluster is modeled as `3n + 1` capacity-constrained links for `n`
//! nodes: one **fabric** (the switch backplane, capacity `n ×` the
//! per-node link), an **uplink** and a **downlink** per node (each at the
//! configured `network_bytes_per_sec`), and one **disk** per node (at
//! `disk_bytes_per_sec`). A network flow crosses its endpoint's
//! uplink/downlink plus the fabric; a DFS flow crosses one disk. With the
//! fabric at exactly `n ×` the node links, a *balanced* transfer (equal
//! bytes per node) gets the full aggregate bandwidth — reproducing the
//! old arithmetic model — while *skewed* transfers saturate some links
//! and idle others, which is precisely the contention the arithmetic
//! model could never express.
//!
//! # Fair sharing
//!
//! Rates come from progressive filling (max-min fairness): all unfrozen
//! flows gain rate uniformly until some link saturates; flows crossing a
//! saturated link freeze at the waterline; repeat. The solver never
//! allocates more than a link's capacity, so per-link utilization is
//! ≤ 100 % at every virtual instant by construction.
//!
//! # Determinism
//!
//! The simulation consumes only byte counts, start offsets, and config
//! capacities — never host time. Events order through the
//! [`EventQueue`]'s `(time_ns, seq)` key, links and flows iterate in
//! fixed index order, and the arithmetic is pure `f64`, so every outcome
//! field is bit-identical across machines and host worker counts.

use crate::events::{secs_to_ns, EventQueue, SimNanos};

/// Sentinel for an unused slot in a flow's link list.
pub const NO_LINK: u32 = u32::MAX;

/// The link layout for an `n`-node cluster.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    caps: Vec<f64>,
}

impl Topology {
    /// Builds the `3n + 1` link set from per-node bandwidths.
    pub fn new(nodes: usize, network_bytes_per_sec: f64, disk_bytes_per_sec: f64) -> Self {
        assert!(nodes > 0, "topology: need at least one node");
        let mut caps = Vec::with_capacity(3 * nodes + 1);
        caps.push(network_bytes_per_sec * nodes as f64); // fabric
        caps.extend(std::iter::repeat(network_bytes_per_sec).take(2 * nodes)); // up, down
        caps.extend(std::iter::repeat(disk_bytes_per_sec).take(nodes)); // disks
        Topology { nodes, caps }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The switch backplane link.
    pub fn fabric(&self) -> u32 {
        0
    }

    /// Node `i`'s transmit link.
    pub fn uplink(&self, node: usize) -> u32 {
        (1 + node % self.nodes) as u32
    }

    /// Node `i`'s receive link.
    pub fn downlink(&self, node: usize) -> u32 {
        (1 + self.nodes + node % self.nodes) as u32
    }

    /// Node `i`'s disk.
    pub fn disk(&self, node: usize) -> u32 {
        (1 + 2 * self.nodes + node % self.nodes) as u32
    }

    /// Total number of links.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True for the degenerate empty topology (never constructed; kept
    /// for the `len`/`is_empty` pairing lint).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Capacity of `link` in bytes/sec.
    pub fn capacity(&self, link: u32) -> f64 {
        self.caps[link as usize]
    }

    /// All capacities, fabric first.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Human-readable link name (`fabric`, `up:3`, `down:0`, `disk:7`).
    pub fn label(&self, link: u32) -> String {
        let l = link as usize;
        if l == 0 {
            "fabric".to_string()
        } else if l <= self.nodes {
            format!("up:{}", l - 1)
        } else if l <= 2 * self.nodes {
            format!("down:{}", l - 1 - self.nodes)
        } else {
            format!("disk:{}", l - 1 - 2 * self.nodes)
        }
    }
}

/// One transfer: `bytes` crossing up to two links, arriving at
/// `start_secs` on the simulation's relative clock.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Arrival offset from the simulation origin, in virtual seconds.
    pub start_secs: f64,
    /// Payload size.
    pub bytes: u64,
    /// Links the flow crosses ([`NO_LINK`] for unused slots).
    pub links: [u32; 2],
}

impl FlowSpec {
    /// A flow starting at the origin.
    pub fn new(bytes: u64, links: [u32; 2]) -> Self {
        FlowSpec { start_secs: 0.0, bytes, links }
    }

    /// Builder-style arrival offset.
    pub fn at(mut self, start_secs: f64) -> Self {
        self.start_secs = start_secs;
        self
    }
}

/// A mid-transfer crash: at `at_secs`, flow `flow` (by spec index) is
/// cancelled — its completion event is tombstoned — and a reattempt
/// carrying the full byte count is re-enqueued `requeue_delay_secs`
/// later. The reattempt's finish is reported under the original flow's
/// index. A cancel aimed at an already-finished flow is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct CancelSpec {
    /// Index into the `flows` slice passed to [`simulate`].
    pub flow: usize,
    /// When the crash fires, in virtual seconds.
    pub at_secs: f64,
    /// Extra delay before the reattempt starts (failure detection +
    /// rescheduling, the `task_retry_delay_secs` knob).
    pub requeue_delay_secs: f64,
}

/// What the flow simulation produced.
#[derive(Debug, Clone, Default)]
pub struct FlowOutcome {
    /// Completion time of the last flow, in virtual seconds from the
    /// simulation origin (0 for an empty flow set).
    pub makespan_secs: f64,
    /// Per-input-flow completion time (reattempts report under the
    /// original index).
    pub finish_secs: Vec<f64>,
    /// Heap events processed (arrivals, completions, cancels, and stale
    /// re-solve tombstones).
    pub events: u64,
    /// Rate re-solves performed (one per processed live event).
    pub resolves: u64,
    /// Bytes carried per link, indexed like [`Topology::capacities`].
    pub link_bytes: Vec<f64>,
    /// Virtual seconds each link spent with at least one active flow.
    pub link_busy_secs: Vec<f64>,
    /// Peak allocated-rate / capacity per link (≤ 1.0 by construction).
    pub link_peak_util: Vec<f64>,
    /// Maximum number of simultaneously active flows.
    pub peak_flows: usize,
}

/// Max-min fair rates for `flows` (each a link pair) over `caps`,
/// touching only links listed in `touched`. `out` is overwritten.
fn solve_into(
    caps: &[f64],
    flows: &[(usize, [u32; 2])],
    touched: &[u32],
    nflows: &mut [u32],
    cap_left: &mut [f64],
    out: &mut [f64],
) {
    for &l in touched {
        nflows[l as usize] = 0;
        cap_left[l as usize] = caps[l as usize];
    }
    for (_, links) in flows {
        for &l in links {
            if l != NO_LINK {
                nflows[l as usize] += 1;
            }
        }
    }
    let f = flows.len();
    let mut frozen = vec![false; f];
    let mut water = 0.0_f64;
    let mut remaining = f;
    while remaining > 0 {
        let mut delta = f64::INFINITY;
        for &l in touched {
            let l = l as usize;
            if nflows[l] > 0 {
                let share = cap_left[l] / nflows[l] as f64;
                if share < delta {
                    delta = share;
                }
            }
        }
        if !delta.is_finite() {
            // No constrained link left (flows with no links): unreachable
            // through the public API, but freeze defensively.
            for (i, fr) in frozen.iter_mut().enumerate() {
                if !*fr {
                    out[i] = f64::INFINITY;
                }
            }
            break;
        }
        water += delta;
        // Drain every constrained link by the uniform fill; links whose
        // pre-fill share equals the minimum saturate exactly.
        let mut any_saturated = false;
        for &l in touched {
            let l = l as usize;
            if nflows[l] > 0 {
                let share = cap_left[l] / nflows[l] as f64;
                cap_left[l] -= delta * nflows[l] as f64;
                if share == delta {
                    cap_left[l] = 0.0;
                    any_saturated = true;
                }
            }
        }
        for (i, (_, links)) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let hit_bottleneck = !any_saturated
                || links.iter().any(|&l| l != NO_LINK && nflows[l as usize] > 0 && {
                    cap_left[l as usize] == 0.0
                });
            if hit_bottleneck {
                frozen[i] = true;
                out[i] = water;
                remaining -= 1;
                for &l in links {
                    if l != NO_LINK {
                        nflows[l as usize] -= 1;
                    }
                }
            }
        }
    }
}

/// Max-min fair rates for concurrent `flows` over `topo` — the solver the
/// event loop re-runs at every transfer start/finish. Exposed for the
/// fair-share property tests.
pub fn solve_rates(topo: &Topology, flows: &[[u32; 2]]) -> Vec<f64> {
    let caps = topo.capacities();
    let touched: Vec<u32> = (0..caps.len() as u32).collect();
    let indexed: Vec<(usize, [u32; 2])> = flows.iter().copied().enumerate().collect();
    let mut out = vec![0.0; flows.len()];
    let mut nflows = vec![0u32; caps.len()];
    let mut cap_left = vec![0.0; caps.len()];
    solve_into(caps, &indexed, &touched, &mut nflows, &mut cap_left, &mut out);
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FlowState {
    Pending,
    Active,
    Done,
}

#[derive(Debug)]
struct FlowInstance {
    links: [u32; 2],
    remaining: f64,
    rate: f64,
    epoch: u64,
    state: FlowState,
    /// Index into the caller's spec slice this instance reports under.
    origin: usize,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival(usize),
    Completion { inst: usize, epoch: u64 },
    Cancel(usize),
}

/// Runs the shared-bandwidth simulation: every flow arrives at its start
/// offset, rates re-solve max-min-fairly at each arrival / completion /
/// cancellation, and the outcome reports completion times plus per-link
/// contention statistics. `queue_capacity` pre-sizes the event heap.
pub fn simulate(
    topo: &Topology,
    flows: &[FlowSpec],
    cancels: &[CancelSpec],
    queue_capacity: usize,
) -> FlowOutcome {
    let nlinks = topo.len();
    let mut out = FlowOutcome {
        finish_secs: vec![0.0; flows.len()],
        link_bytes: vec![0.0; nlinks],
        link_busy_secs: vec![0.0; nlinks],
        link_peak_util: vec![0.0; nlinks],
        ..FlowOutcome::default()
    };
    if flows.is_empty() {
        return out;
    }

    let mut insts: Vec<FlowInstance> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| FlowInstance {
            links: f.links,
            remaining: f.bytes as f64,
            rate: 0.0,
            epoch: 0,
            state: FlowState::Pending,
            origin: i,
        })
        .collect();

    // Links any flow can touch — the only ones the solver and the
    // accounting pass visit (the full topology can be 3000+ links at
    // 1000 virtual nodes; a charge group usually touches a fraction).
    let mut touched: Vec<u32> = flows
        .iter()
        .flat_map(|f| f.links.into_iter())
        .filter(|&l| l != NO_LINK)
        .collect();
    touched.sort_unstable();
    touched.dedup();

    let mut queue: EventQueue<Ev> = EventQueue::with_capacity(queue_capacity);
    for (i, f) in flows.iter().enumerate() {
        queue.push(secs_to_ns(f.start_secs), Ev::Arrival(i));
    }
    for (c, spec) in cancels.iter().enumerate() {
        assert!(spec.flow < flows.len(), "cancel names flow {} of {}", spec.flow, flows.len());
        queue.push(secs_to_ns(spec.at_secs), Ev::Cancel(c));
    }

    let mut nflows_scratch = vec![0u32; nlinks];
    let mut cap_left_scratch = vec![0.0_f64; nlinks];
    // Per-link allocated rate under the *current* rate set, refreshed at
    // every re-solve. Keeping it incrementally makes the inter-event
    // accounting O(touched + active) instead of O(touched × instances) —
    // the difference between minutes and milliseconds at 1000 virtual
    // nodes with thousands of per-partition flows.
    let mut link_alloc = vec![0.0_f64; nlinks];
    let mut active: Vec<(usize, [u32; 2])> = Vec::with_capacity(flows.len());
    let mut rates: Vec<f64> = Vec::with_capacity(flows.len());
    let mut now_ns: SimNanos = 0;

    while let Some(ev) = queue.pop() {
        // Account the elapsed interval against the previous rate set.
        // Between events no flow changes state, so `active` (rebuilt at
        // the last re-solve) is exactly the set that moved bytes.
        let dt = (ev.time_ns.saturating_sub(now_ns)) as f64 * 1e-9;
        if dt > 0.0 {
            for &l in &touched {
                let alloc = link_alloc[l as usize];
                if alloc > 0.0 {
                    out.link_busy_secs[l as usize] += dt;
                    out.link_bytes[l as usize] += alloc * dt;
                }
            }
            for &(i, _) in &active {
                let inst = &mut insts[i];
                inst.remaining = (inst.remaining - inst.rate * dt).max(0.0);
            }
        }
        now_ns = ev.time_ns;

        let mut changed = false;
        match ev.payload {
            Ev::Arrival(i) => {
                if insts[i].state == FlowState::Pending {
                    insts[i].state = FlowState::Active;
                    changed = true;
                }
            }
            Ev::Completion { inst, epoch } => {
                let f = &mut insts[inst];
                if f.state == FlowState::Active && f.epoch == epoch {
                    f.state = FlowState::Done;
                    f.remaining = 0.0;
                    let t = now_ns as f64 * 1e-9;
                    out.finish_secs[f.origin] = t;
                    out.makespan_secs = out.makespan_secs.max(t);
                    changed = true;
                }
            }
            Ev::Cancel(c) => {
                let spec = cancels[c];
                let f = &mut insts[spec.flow];
                if f.state == FlowState::Active || f.state == FlowState::Pending {
                    // Drop the attempt (its completion event goes stale via
                    // the epoch bump below) and re-enqueue a full-size
                    // reattempt after the detection delay.
                    f.state = FlowState::Done;
                    f.epoch += 1;
                    let origin = f.origin;
                    let links = f.links;
                    let bytes = flows[spec.flow].bytes as f64;
                    insts.push(FlowInstance {
                        links,
                        remaining: bytes,
                        rate: 0.0,
                        epoch: 0,
                        state: FlowState::Pending,
                        origin,
                    });
                    let reattempt = insts.len() - 1;
                    queue.push(
                        now_ns + secs_to_ns(spec.requeue_delay_secs),
                        Ev::Arrival(reattempt),
                    );
                    changed = true;
                }
            }
        }
        if !changed {
            continue; // stale completion — costs only the heap pop
        }

        // Re-solve rates for the active set and re-schedule completions
        // for flows whose rate moved.
        out.resolves += 1;
        active.clear();
        for (i, inst) in insts.iter().enumerate() {
            if inst.state == FlowState::Active {
                active.push((i, inst.links));
            }
        }
        out.peak_flows = out.peak_flows.max(active.len());
        rates.resize(active.len(), 0.0);
        solve_into(
            topo.capacities(),
            &active,
            &touched,
            &mut nflows_scratch,
            &mut cap_left_scratch,
            &mut rates,
        );
        for &l in &touched {
            link_alloc[l as usize] = 0.0;
        }
        for (k, (_, links)) in active.iter().enumerate() {
            for &l in links {
                if l != NO_LINK {
                    link_alloc[l as usize] += rates[k];
                }
            }
        }
        for &l in &touched {
            let cap = topo.capacity(l);
            if cap > 0.0 {
                let util = link_alloc[l as usize] / cap;
                if util > out.link_peak_util[l as usize] {
                    out.link_peak_util[l as usize] = util;
                }
            }
        }
        for (k, &(i, _)) in active.iter().enumerate() {
            let inst = &mut insts[i];
            let new_rate = rates[k];
            if new_rate.to_bits() != inst.rate.to_bits() || inst.epoch == 0 {
                inst.rate = new_rate;
                inst.epoch += 1;
                let dur_secs = if new_rate > 0.0 { inst.remaining / new_rate } else { 0.0 };
                queue.push(now_ns + secs_to_ns(dur_secs), Ev::Completion {
                    inst: i,
                    epoch: inst.epoch,
                });
            }
        }
    }
    out.events = queue.processed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo8() -> Topology {
        Topology::new(8, 100.0, 50.0)
    }

    #[test]
    fn topology_layout_and_labels() {
        let t = topo8();
        assert_eq!(t.len(), 25);
        assert_eq!(t.capacity(t.fabric()), 800.0);
        assert_eq!(t.capacity(t.uplink(3)), 100.0);
        assert_eq!(t.capacity(t.downlink(0)), 100.0);
        assert_eq!(t.capacity(t.disk(7)), 50.0);
        assert_eq!(t.label(t.fabric()), "fabric");
        assert_eq!(t.label(t.uplink(3)), "up:3");
        assert_eq!(t.label(t.downlink(5)), "down:5");
        assert_eq!(t.label(t.disk(2)), "disk:2");
    }

    #[test]
    fn single_flow_gets_its_bottleneck_rate() {
        let t = topo8();
        let rates = solve_rates(&t, &[[t.uplink(0), t.fabric()]]);
        assert_eq!(rates, vec![100.0], "one flow is capped by its uplink");
    }

    #[test]
    fn balanced_flows_saturate_every_uplink() {
        let t = topo8();
        let flows: Vec<[u32; 2]> = (0..8).map(|n| [t.uplink(n), t.fabric()]).collect();
        let rates = solve_rates(&t, &flows);
        assert!(rates.iter().all(|&r| r == 100.0), "{rates:?}");
    }

    #[test]
    fn fair_share_splits_a_shared_link_evenly() {
        let t = topo8();
        // 4 flows on one uplink: each gets a quarter of it.
        let flows = vec![[t.uplink(2), t.fabric()]; 4];
        let rates = solve_rates(&t, &flows);
        assert!(rates.iter().all(|&r| (r - 25.0).abs() < 1e-12), "{rates:?}");
        assert!((rates.iter().sum::<f64>() - 100.0).abs() < 1e-9, "shares sum to capacity");
    }

    #[test]
    fn max_min_gives_unconstrained_flows_the_leftovers() {
        // 3 flows share uplink 0 (rate 100/3 each); 1 flow alone on
        // uplink 1 takes the full 100. Fabric (800) never binds.
        let t = topo8();
        let flows = vec![
            [t.uplink(0), t.fabric()],
            [t.uplink(0), t.fabric()],
            [t.uplink(0), t.fabric()],
            [t.uplink(1), t.fabric()],
        ];
        let rates = solve_rates(&t, &flows);
        for r in &rates[..3] {
            assert!((r - 100.0 / 3.0).abs() < 1e-9, "{rates:?}");
        }
        assert!((rates[3] - 100.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn fabric_binds_when_oversubscribed() {
        // 16 flows across 8 uplinks (2 each): uplink share would be 50,
        // but with a narrow fabric of 400 the fabric share 400/16 = 25
        // binds first.
        let t = Topology::new(8, 100.0, 50.0);
        let narrow = {
            let mut t2 = t.clone();
            t2.caps[0] = 400.0;
            t2
        };
        let flows: Vec<[u32; 2]> =
            (0..16).map(|i| [narrow.uplink(i % 8), narrow.fabric()]).collect();
        let rates = solve_rates(&narrow, &flows);
        assert!(rates.iter().all(|&r| (r - 25.0).abs() < 1e-9), "{rates:?}");
        assert!((rates.iter().sum::<f64>() - 400.0).abs() < 1e-6, "fabric fully used");
    }

    #[test]
    fn simulate_single_flow_matches_arithmetic() {
        let t = topo8();
        let out = simulate(&t, &[FlowSpec::new(1000, [t.uplink(0), t.fabric()])], &[], 16);
        assert!((out.makespan_secs - 10.0).abs() < 1e-6, "{}", out.makespan_secs);
        assert!((out.finish_secs[0] - 10.0).abs() < 1e-6);
        assert!(out.events >= 2);
        assert_eq!(out.peak_flows, 1);
    }

    #[test]
    fn skewed_flows_finish_at_their_own_pace() {
        let t = topo8();
        let flows = vec![
            FlowSpec::new(1000, [t.uplink(0), t.fabric()]), // 10 s alone
            FlowSpec::new(500, [t.uplink(1), t.fabric()]),  // 5 s alone
        ];
        let out = simulate(&t, &flows, &[], 16);
        assert!((out.finish_secs[0] - 10.0).abs() < 1e-6, "{:?}", out.finish_secs);
        assert!((out.finish_secs[1] - 5.0).abs() < 1e-6, "{:?}", out.finish_secs);
        // Uplink 1 idles after 5 s: busy 5 s, uplink 0 busy 10 s.
        assert!((out.link_busy_secs[t.uplink(0) as usize] - 10.0).abs() < 1e-6);
        assert!((out.link_busy_secs[t.uplink(1) as usize] - 5.0).abs() < 1e-6);
        assert!(out.link_peak_util.iter().all(|&u| u <= 1.0 + 1e-9));
    }

    #[test]
    fn shared_link_contention_stretches_completions() {
        let t = topo8();
        // Two 500-byte flows on the same uplink: 10 s together, not 5.
        let flows = vec![
            FlowSpec::new(500, [t.uplink(0), t.fabric()]),
            FlowSpec::new(500, [t.uplink(0), t.fabric()]),
        ];
        let out = simulate(&t, &flows, &[], 16);
        assert!((out.makespan_secs - 10.0).abs() < 1e-6, "{}", out.makespan_secs);
        // Both finish at 10 s (equal shares, equal sizes).
        assert!((out.finish_secs[0] - 10.0).abs() < 1e-6);
        assert!((out.finish_secs[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_resolves_rates_mid_flight() {
        let t = topo8();
        // Flow A: 1000 bytes on uplink 0 from t=0. Flow B: 250 bytes on
        // the same uplink from t=5. A runs at 100 for 5 s (500 left),
        // then both at 50; B finishes at t=10, A's last 250 run at 100
        // again: A finishes at 12.5 s.
        let flows = vec![
            FlowSpec::new(1000, [t.uplink(0), t.fabric()]),
            FlowSpec::new(250, [t.uplink(0), t.fabric()]).at(5.0),
        ];
        let out = simulate(&t, &flows, &[], 16);
        assert!((out.finish_secs[1] - 10.0).abs() < 1e-5, "{:?}", out.finish_secs);
        assert!((out.finish_secs[0] - 12.5).abs() < 1e-5, "{:?}", out.finish_secs);
        assert!(out.resolves >= 4, "start/finish re-solves must happen");
    }

    #[test]
    fn cancel_mid_transfer_requeues_the_reattempt() {
        let t = topo8();
        // 1000 bytes at 100 B/s = 10 s nominally; crash at 4 s, 2 s
        // detection delay, full re-send: finish = 4 + 2 + 10 = 16 s.
        let flows = vec![FlowSpec::new(1000, [t.uplink(0), t.fabric()])];
        let cancels = vec![CancelSpec { flow: 0, at_secs: 4.0, requeue_delay_secs: 2.0 }];
        let out = simulate(&t, &flows, &cancels, 16);
        assert!((out.finish_secs[0] - 16.0).abs() < 1e-5, "{:?}", out.finish_secs);
        // The first attempt's 400 bytes still crossed the link.
        assert!((out.link_bytes[t.uplink(0) as usize] - 1400.0).abs() < 1.0);
    }

    #[test]
    fn cancel_after_completion_is_a_no_op() {
        let t = topo8();
        let flows = vec![FlowSpec::new(100, [t.uplink(0), t.fabric()])];
        let cancels = vec![CancelSpec { flow: 0, at_secs: 50.0, requeue_delay_secs: 2.0 }];
        let out = simulate(&t, &flows, &cancels, 16);
        assert!((out.finish_secs[0] - 1.0).abs() < 1e-6, "{:?}", out.finish_secs);
    }

    #[test]
    fn zero_byte_flows_finish_instantly() {
        let t = topo8();
        let out = simulate(&t, &[FlowSpec::new(0, [t.uplink(0), t.fabric()])], &[], 4);
        assert_eq!(out.finish_secs[0], 0.0);
        assert_eq!(out.makespan_secs, 0.0);
    }

    #[test]
    fn outcome_is_deterministic() {
        let t = topo8();
        let flows: Vec<FlowSpec> = (0..32)
            .map(|i| {
                FlowSpec::new(100 + 37 * i as u64, [t.uplink(i % 8), t.fabric()])
                    .at((i % 5) as f64 * 0.25)
            })
            .collect();
        let a = simulate(&t, &flows, &[], 64);
        let b = simulate(&t, &flows, &[], 64);
        assert_eq!(a.finish_secs, b.finish_secs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.link_bytes, b.link_bytes);
        assert_eq!(a.link_peak_util, b.link_peak_util);
    }
}
