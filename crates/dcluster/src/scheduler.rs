//! Virtual-core task scheduling.
//!
//! Given the measured durations of a stage's tasks, compute how long the
//! stage would have taken on `cores` parallel cores. Greedy longest-
//! processing-time (LPT) list scheduling is within 4/3 of optimal makespan
//! and matches how MapReduce/Spark slot schedulers behave on skewed task
//! sets closely enough for the paper's shape claims.

/// Makespan of scheduling `durations` onto `cores` identical cores with
/// greedy LPT. Returns 0 for an empty task set.
pub fn makespan(durations: &[f64], cores: usize) -> f64 {
    makespan_with_critical(durations, cores).0
}

/// Like [`makespan`], but also identifies the **critical task**: the task
/// (by original index) that finishes last on the makespan core — the task
/// whose completion releases the stage barrier. The critical-path profiler
/// attaches it to stage segments so "which task dominated this barrier" is
/// answerable from the trace.
pub fn makespan_with_critical(durations: &[f64], cores: usize) -> (f64, Option<usize>) {
    assert!(cores > 0, "makespan: need at least one core");
    if durations.is_empty() {
        return (0.0, None);
    }
    let mut order: Vec<usize> = (0..durations.len()).collect();
    // Descending by duration, original index as the deterministic tiebreak.
    order.sort_by(|&a, &b| {
        durations[b].partial_cmp(&durations[a]).expect("finite durations").then(a.cmp(&b))
    });
    // Binary-heap of core finish times would be O(n log c); with the task
    // counts this simulator sees (≤ thousands), a linear min-scan is fine.
    let mut loads = vec![0.0_f64; cores.min(durations.len())];
    // Last task assigned to each core: on a single core tasks run back to
    // back, so the last-assigned one is the one that finishes at the
    // core's final load.
    let mut last_task = vec![usize::MAX; loads.len()];
    for t in order {
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .expect("non-empty loads");
        loads[idx] += durations[t];
        last_task[idx] = t;
    }
    let (max_core, span) = loads
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
        .expect("non-empty loads");
    (*span, Some(last_task[max_core]))
}

/// Number of scheduling waves `ceil(tasks / cores)` — used to charge
/// per-wave overheads the way Hadoop's slot scheduler does.
pub fn waves(tasks: usize, cores: usize) -> usize {
    assert!(cores > 0, "waves: need at least one core");
    tasks.div_ceil(cores)
}

/// Event-driven per-host slot schedule — the contended timing model's
/// replacement for global LPT. Task `i` is pinned to node `i % nodes`
/// (the same locality rule caches, crashes, and DFS placement already
/// use) and each node runs its tasks FIFO on `cores_per_node` slots; a
/// task completion event frees its slot for the node's next queued task.
/// Unlike LPT, a node cannot steal another node's backlog, so per-node
/// skew stretches the stage — the slot-scheduler behaviour LPT averages
/// away.
///
/// Returns `(makespan_secs, critical_task, events_processed)`. The
/// critical task is the one whose completion releases the stage barrier
/// (the last completion popped at the makespan instant — deterministic
/// through the queue's seq tiebreak).
pub fn host_schedule(
    durations: &[f64],
    nodes: usize,
    cores_per_node: usize,
    queue_capacity: usize,
) -> (f64, Option<usize>, u64) {
    use crate::events::{ns_to_secs, secs_to_ns, EventQueue};
    use std::collections::VecDeque;
    assert!(nodes > 0 && cores_per_node > 0, "host_schedule: need a non-empty cluster");
    if durations.is_empty() {
        return (0.0, None, 0);
    }
    let mut backlog: Vec<VecDeque<usize>> = vec![VecDeque::new(); nodes];
    for i in 0..durations.len() {
        backlog[i % nodes].push_back(i);
    }
    let mut queue: EventQueue<(usize, usize)> = EventQueue::with_capacity(queue_capacity);
    for (node, q) in backlog.iter_mut().enumerate() {
        for _ in 0..cores_per_node {
            match q.pop_front() {
                Some(task) => {
                    queue.push(secs_to_ns(durations[task]), (task, node));
                }
                None => break,
            }
        }
    }
    let mut last_ns = 0;
    let mut critical = None;
    while let Some(ev) = queue.pop() {
        let (task, node) = ev.payload;
        if ev.time_ns >= last_ns {
            last_ns = ev.time_ns;
            critical = Some(task);
        }
        if let Some(next) = backlog[node].pop_front() {
            queue.push(ev.time_ns + secs_to_ns(durations[next]), (next, node));
        }
    }
    (ns_to_secs(last_ns), critical, queue.processed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_is_sum() {
        let d = [1.0, 2.0, 3.0];
        assert!((makespan(&d, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn enough_cores_is_max() {
        let d = [1.0, 2.0, 3.0];
        assert!((makespan(&d, 8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn equal_tasks_divide_evenly() {
        let d = vec![1.0; 16];
        assert!((makespan(&d, 4) - 4.0).abs() < 1e-12);
        assert!((makespan(&d, 8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_handles_skew() {
        // One long task dominates no matter the core count.
        let d = [10.0, 1.0, 1.0, 1.0];
        assert!((makespan(&d, 4) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(makespan(&[], 4), 0.0);
    }

    #[test]
    fn makespan_monotone_in_cores() {
        let d: Vec<f64> = (1..40).map(|i| (i % 7) as f64 + 0.5).collect();
        let mut prev = f64::INFINITY;
        for cores in [1, 2, 4, 8, 16, 32] {
            let m = makespan(&d, cores);
            assert!(m <= prev + 1e-12, "makespan must not grow with more cores");
            prev = m;
        }
    }

    #[test]
    fn near_linear_speedup_for_divisible_work() {
        // 256 equal tasks: 16→32→64 cores halves the makespan each time,
        // the shape of the paper's Table 4.
        let d = vec![0.25; 256];
        let t16 = makespan(&d, 16);
        let t32 = makespan(&d, 32);
        let t64 = makespan(&d, 64);
        assert!((t16 / t32 - 2.0).abs() < 1e-9);
        assert!((t16 / t64 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn critical_task_finishes_at_the_makespan() {
        // One long task dominates: it is the critical task.
        let d = [1.0, 10.0, 1.0, 1.0];
        let (span, crit) = makespan_with_critical(&d, 4);
        assert!((span - 10.0).abs() < 1e-12);
        assert_eq!(crit, Some(1));
        // Single core: the critical task is the last one to run — with
        // ties broken by index, LPT runs equal tasks in index order.
        let (span1, crit1) = makespan_with_critical(&[2.0, 2.0, 2.0], 1);
        assert!((span1 - 6.0).abs() < 1e-12);
        assert_eq!(crit1, Some(2));
        assert_eq!(makespan_with_critical(&[], 4), (0.0, None));
    }

    #[test]
    fn waves_rounds_up() {
        assert_eq!(waves(10, 4), 3);
        assert_eq!(waves(8, 4), 2);
        assert_eq!(waves(0, 4), 0);
        assert_eq!(waves(1, 64), 1);
    }

    #[test]
    fn host_schedule_matches_simple_shapes() {
        // 1 node × 1 core: serial sum.
        let (span, crit, _) = host_schedule(&[1.0, 2.0, 3.0], 1, 1, 16);
        assert!((span - 6.0).abs() < 1e-6);
        assert_eq!(crit, Some(2));
        // Enough slots everywhere: max.
        let (span, crit, _) = host_schedule(&[1.0, 2.0, 3.0], 1, 8, 16);
        assert!((span - 3.0).abs() < 1e-6);
        assert_eq!(crit, Some(2));
        assert_eq!(host_schedule(&[], 4, 4, 16), (0.0, None, 0));
    }

    #[test]
    fn host_schedule_cannot_steal_across_nodes() {
        // 2 nodes × 1 core; node 0 owns tasks 0 and 2 (3 s + 3 s), node 1
        // owns task 1 (1 s). LPT on 2 global cores balances to 4 s; the
        // per-host schedule cannot move task 2 to the idle node: 6 s.
        let d = [3.0, 1.0, 3.0];
        assert!((makespan(&d, 2) - 4.0).abs() < 1e-12);
        let (span, crit, _) = host_schedule(&d, 2, 1, 16);
        assert!((span - 6.0).abs() < 1e-6, "got {span}");
        assert_eq!(crit, Some(2));
    }

    #[test]
    fn host_schedule_is_deterministic_under_ties() {
        let d = vec![2.0; 12];
        let a = host_schedule(&d, 4, 2, 32);
        let b = host_schedule(&d, 4, 2, 32);
        assert_eq!(a, b);
        // 12 equal tasks over 4 nodes × 2 slots: 3 per node on 2 slots →
        // two waves → 4 s.
        assert!((a.0 - 4.0).abs() < 1e-6, "got {}", a.0);
        assert!(a.2 >= 12, "every completion is an event");
    }
}
