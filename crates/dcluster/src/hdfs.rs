//! Simulated distributed filesystem.
//!
//! MapReduce jobs communicate *between* jobs through HDFS: the output of
//! `meanJob` is read by every mapper of `YtXJob`, SSVD's huge N×k `Q`
//! matrix is written and re-read, and so on. This module is a byte-metered
//! namespace — artifacts are named, sized, and charged to the cluster's
//! disk model on `put`/`get`; payloads normally stay in the engine's
//! memory (this is a simulator, not a storage system), except for small
//! opaque blobs such as EM checkpoints, which are stored verbatim so a
//! restarted driver can actually read its state back.
//!
//! # Replication and crashes
//!
//! Every file carries a replica set: `dfs_replication` distinct nodes
//! chosen by hashing the file name (a pure placement function, so replica
//! sets are identical across runs). [`Dfs::on_node_crash`] removes the
//! crashed node's replicas; under-replicated files are copied back to
//! full strength (charged as network + disk traffic), and a file whose
//! *last* replica lived on the crashed node is lost — subsequent reads
//! return [`ClusterError::BlockLost`] instead of data.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::cluster::{ClusterError, SimCluster};
use crate::faults::{mix, RecoveryEvent};

/// One named file: its size, an optional verbatim payload, and the nodes
/// currently holding a replica.
#[derive(Debug, Clone)]
struct DfsFile {
    bytes: u64,
    blob: Option<Arc<Vec<u8>>>,
    replicas: Vec<usize>,
}

/// Named byte-size ledger over the simulated DFS.
#[derive(Debug, Default)]
pub struct Dfs {
    // BTreeMap so crash-recovery iterates files in a deterministic order.
    files: Mutex<BTreeMap<String, DfsFile>>,
    // Job ids that currently own a namespace (see [`Dfs::register_job`]).
    jobs: Mutex<BTreeSet<String>>,
}

/// Prefixes `name` with a job-scoped namespace: `jobs/<job>/<name>`.
/// Two tenants writing the same logical file (say, an EM checkpoint)
/// land on distinct DFS paths iff their fits carry distinct job ids.
pub fn job_scoped(job: &str, name: &str) -> String {
    format!("jobs/{job}/{name}")
}

/// The replica set for `name`: `factor` distinct nodes starting from a
/// hash of the file name.
fn placement(name: &str, nodes: usize, factor: usize) -> Vec<usize> {
    let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| mix(acc ^ b as u64));
    let first = (h as usize) % nodes.max(1);
    (0..factor.min(nodes.max(1))).map(|k| (first + k) % nodes.max(1)).collect()
}

impl Dfs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Dfs::default()
    }

    fn files(&self) -> MutexGuard<'_, BTreeMap<String, DfsFile>> {
        // The ledger is plain data; ignore poisoning.
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn insert(&self, cluster: &SimCluster, name: String, bytes: u64, blob: Option<Arc<Vec<u8>>>) {
        let cfg = cluster.config();
        let replicas = placement(&name, cfg.nodes, cfg.dfs_replication);
        self.files().insert(name, DfsFile { bytes, blob, replicas });
    }

    /// Records a file of `bytes` and charges the write to the cluster.
    /// Overwrites any previous file of the same name.
    ///
    /// Only the primary copy's bytes are charged — pipelined replication
    /// overlaps the write in real HDFS, and charging it here would skew
    /// every fault-free byte ledger. Post-crash *re*-replication traffic,
    /// which is not overlapped with anything, is charged in
    /// [`Dfs::on_node_crash`].
    pub fn put(&self, cluster: &SimCluster, name: impl Into<String>, bytes: u64) {
        let name = name.into();
        cluster.charge_dfs_write(bytes);
        if obs::enabled() {
            cluster.trace_instant("dfs", &format!("dfs.put {name} [{bytes} B]"));
        }
        self.insert(cluster, name, bytes, None);
    }

    /// Records a file with a verbatim payload (checkpoints): charged like
    /// [`Dfs::put`], and [`Dfs::get_blob`] returns the bytes themselves.
    pub fn put_blob(&self, cluster: &SimCluster, name: impl Into<String>, payload: Vec<u8>) {
        let name = name.into();
        let bytes = payload.len() as u64;
        cluster.charge_dfs_write(bytes);
        if obs::enabled() {
            cluster.trace_instant("dfs", &format!("dfs.put {name} [{bytes} B]"));
        }
        self.insert(cluster, name, bytes, Some(Arc::new(payload)));
    }

    /// Seeds a file without charging any I/O — for pre-loaded input data
    /// that exists before the simulation starts (the paper's datasets are
    /// already in HDFS when a job begins).
    pub fn seed(&self, cluster: &SimCluster, name: impl Into<String>, bytes: u64) {
        self.insert(cluster, name.into(), bytes, None);
    }

    /// Charges a full read of the named file and returns its size.
    /// A file that never existed is [`ClusterError::NoSuchFile`]; one whose
    /// last replica died with a crashed node is [`ClusterError::BlockLost`].
    pub fn get(&self, cluster: &SimCluster, name: &str) -> Result<u64, ClusterError> {
        let bytes = match self.files().get(name) {
            Some(f) if f.replicas.is_empty() => {
                return Err(ClusterError::BlockLost { name: name.to_string() })
            }
            Some(f) => f.bytes,
            None => return Err(ClusterError::NoSuchFile { name: name.to_string() }),
        };
        cluster.charge_dfs_read(bytes);
        if obs::enabled() {
            cluster.trace_instant("dfs", &format!("dfs.get {name} [{bytes} B]"));
        }
        Ok(bytes)
    }

    /// Charges a full read and returns the stored payload. Errors like
    /// [`Dfs::get`]; a size-only file (no payload) is `NoSuchFile` too.
    pub fn get_blob(&self, cluster: &SimCluster, name: &str) -> Result<Arc<Vec<u8>>, ClusterError> {
        let (bytes, blob) = match self.files().get(name) {
            Some(f) if f.replicas.is_empty() => {
                return Err(ClusterError::BlockLost { name: name.to_string() })
            }
            Some(f) => match &f.blob {
                Some(b) => (f.bytes, Arc::clone(b)),
                None => return Err(ClusterError::NoSuchFile { name: name.to_string() }),
            },
            None => return Err(ClusterError::NoSuchFile { name: name.to_string() }),
        };
        cluster.charge_dfs_read(bytes);
        if obs::enabled() {
            cluster.trace_instant("dfs", &format!("dfs.get {name} [{bytes} B]"));
        }
        Ok(blob)
    }

    /// Size of the named file without charging a read. Lost files report
    /// `None` like missing ones.
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.files().get(name).filter(|f| !f.replicas.is_empty()).map(|f| f.bytes)
    }

    /// Nodes holding a replica of the named file (tests/reporting).
    pub fn replicas(&self, name: &str) -> Option<Vec<usize>> {
        self.files().get(name).map(|f| f.replicas.clone())
    }

    /// Total bytes currently stored (lost files excluded).
    pub fn total_bytes(&self) -> u64 {
        self.files().values().filter(|f| !f.replicas.is_empty()).map(|f| f.bytes).sum()
    }

    /// Number of stored files (lost files excluded).
    pub fn file_count(&self) -> usize {
        self.files().values().filter(|f| !f.replicas.is_empty()).count()
    }

    /// Removes a file, returning its size if it existed.
    pub fn delete(&self, name: &str) -> Option<u64> {
        self.files().remove(name).map(|f| f.bytes)
    }

    /// Claims the `jobs/<job>/` namespace for a running job. A second
    /// registration of the same id — tenant A and tenant B picking the
    /// same job name, or one tenant double-submitting — is rejected with
    /// [`ClusterError::DuplicateJob`] *before* either job writes a byte,
    /// so checkpoints can never silently overwrite each other.
    pub fn register_job(&self, job: &str) -> Result<(), ClusterError> {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if !jobs.insert(job.to_string()) {
            return Err(ClusterError::DuplicateJob { job: job.to_string() });
        }
        Ok(())
    }

    /// Releases a job id claimed by [`Dfs::register_job`] and deletes
    /// every file under its `jobs/<job>/` namespace, returning the bytes
    /// reclaimed. Releasing an unregistered id is a no-op.
    pub fn release_job(&self, job: &str) -> u64 {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if !jobs.remove(job) {
            return 0;
        }
        drop(jobs);
        let prefix = format!("jobs/{job}/");
        let mut files = self.files();
        let doomed: Vec<String> =
            files.keys().filter(|k| k.starts_with(&prefix)).cloned().collect();
        let mut reclaimed = 0u64;
        for name in doomed {
            if let Some(f) = files.remove(&name) {
                reclaimed += f.bytes;
            }
        }
        reclaimed
    }

    /// Job ids currently registered, in sorted order.
    pub fn registered_jobs(&self) -> Vec<String> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// Drops every replica stored on `node`. Files still holding another
    /// replica are re-replicated back to their configured factor (charged
    /// as network + disk traffic and returned as `replication_bytes`);
    /// files that lost their last replica become permanently lost. Events
    /// are emitted in file-name order — deterministic across runs.
    pub fn on_node_crash(
        &self,
        cluster: &SimCluster,
        node: usize,
    ) -> (Vec<RecoveryEvent>, u64) {
        let nodes = cluster.config().nodes;
        let factor = cluster.config().dfs_replication.min(nodes);
        let mut re_replicated: Vec<(String, u64)> = Vec::new();
        let mut lost: Vec<String> = Vec::new();
        {
            let mut files = self.files();
            for (name, f) in files.iter_mut() {
                let Some(pos) = f.replicas.iter().position(|&n| n == node) else { continue };
                f.replicas.remove(pos);
                if f.replicas.is_empty() {
                    f.blob = None;
                    lost.push(name.clone());
                    continue;
                }
                // Copy the block to the first node (scanning past the
                // crashed one) that doesn't already hold it. The crashed
                // node rejoins blank, so it is a valid last-resort target.
                while f.replicas.len() < factor {
                    let target = (0..nodes)
                        .map(|k| (node + 1 + k) % nodes)
                        .find(|t| !f.replicas.contains(t));
                    match target {
                        Some(t) => f.replicas.push(t),
                        None => break,
                    }
                }
                re_replicated.push((name.clone(), f.bytes));
            }
        }
        // Charge after releasing the file lock (metrics lock inside).
        let mut events = Vec::new();
        let mut replication_bytes = 0u64;
        for (name, bytes) in re_replicated {
            cluster.charge_network_labeled(bytes, "re-replicate");
            cluster.charge_dfs_write_labeled(bytes, "re-replicate");
            replication_bytes += bytes;
            events.push(RecoveryEvent::BlockReReplicated { file: name });
        }
        for name in lost {
            events.push(RecoveryEvent::BlockLost { file: name });
        }
        (events, replication_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    #[test]
    fn put_get_roundtrip_charges_io() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put(&c, "Q-matrix", 1_000_000);
        assert_eq!(dfs.get(&c, "Q-matrix").unwrap(), 1_000_000);
        let m = c.metrics();
        assert_eq!(m.dfs_bytes_written, 1_000_000);
        assert_eq!(m.dfs_bytes_read, 1_000_000);
        assert!(m.virtual_time_secs > 0.0);
    }

    #[test]
    fn overwrite_replaces_size() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put(&c, "f", 100);
        dfs.put(&c, "f", 250);
        assert_eq!(dfs.stat("f"), Some(250));
        assert_eq!(dfs.total_bytes(), 250);
        assert_eq!(dfs.file_count(), 1);
    }

    #[test]
    fn missing_file_is_an_observable_error() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        assert_eq!(
            dfs.get(&c, "ghost"),
            Err(ClusterError::NoSuchFile { name: "ghost".into() })
        );
        assert_eq!(c.metrics().dfs_bytes_read, 0, "a failed read charges nothing");
    }

    #[test]
    fn delete_removes() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put(&c, "tmp", 10);
        assert_eq!(dfs.delete("tmp"), Some(10));
        assert_eq!(dfs.delete("tmp"), None);
        assert_eq!(dfs.stat("tmp"), None);
    }

    #[test]
    fn seed_is_uncharged() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.seed(&c, "input/Y", 5_000);
        assert_eq!(dfs.stat("input/Y"), Some(5_000));
        let m = c.metrics();
        assert_eq!(m.dfs_bytes_written, 0);
        assert_eq!(m.virtual_time_secs, 0.0);
    }

    #[test]
    fn blob_roundtrip_preserves_payload() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put_blob(&c, "ckpt", vec![1, 2, 3, 4]);
        assert_eq!(*dfs.get_blob(&c, "ckpt").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(dfs.stat("ckpt"), Some(4));
        // A size-only file has no payload to return.
        dfs.put(&c, "sizes-only", 10);
        assert!(matches!(
            dfs.get_blob(&c, "sizes-only"),
            Err(ClusterError::NoSuchFile { .. })
        ));
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let a = placement("some/file", 8, 3);
        assert_eq!(a, placement("some/file", 8, 3));
        assert_eq!(a.len(), 3);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas must land on distinct nodes");
        // Factor capped at the node count.
        assert_eq!(placement("f", 2, 3).len(), 2);
    }

    #[test]
    fn crash_re_replicates_or_loses() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_dfs_replication(2));
        let dfs = Dfs::new();
        dfs.put(&c, "safe", 1_000);
        let replicas = dfs.replicas("safe").unwrap();
        let written_before = c.metrics().dfs_bytes_written;

        // Crash a node holding one of the two replicas: the file survives
        // and is copied back to factor 2, charged as recovery traffic.
        let (events, bytes) = dfs.on_node_crash(&c, replicas[0]);
        assert_eq!(events, vec![RecoveryEvent::BlockReReplicated { file: "safe".into() }]);
        assert_eq!(bytes, 1_000);
        assert_eq!(dfs.replicas("safe").unwrap().len(), 2);
        assert!(dfs.get(&c, "safe").is_ok());
        assert_eq!(c.metrics().dfs_bytes_written, written_before + 1_000);

        // With factor 1, losing the only replica loses the file.
        let c1 = SimCluster::new(ClusterConfig::paper_cluster().with_dfs_replication(1));
        let dfs1 = Dfs::new();
        dfs1.put(&c1, "fragile", 500);
        let only = dfs1.replicas("fragile").unwrap()[0];
        let (events, bytes) = dfs1.on_node_crash(&c1, only);
        assert_eq!(events, vec![RecoveryEvent::BlockLost { file: "fragile".into() }]);
        assert_eq!(bytes, 0);
        assert_eq!(
            dfs1.get(&c1, "fragile"),
            Err(ClusterError::BlockLost { name: "fragile".into() })
        );
        assert_eq!(dfs1.stat("fragile"), None);
    }

    #[test]
    fn job_scoped_names_never_collide_across_jobs() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        let a = job_scoped("tenantA-fit0", "_checkpoints/em-state");
        let b = job_scoped("tenantB-fit0", "_checkpoints/em-state");
        assert_ne!(a, b, "same logical file, different jobs, different paths");
        dfs.put_blob(&c, &a, vec![0xAA]);
        dfs.put_blob(&c, &b, vec![0xBB]);
        assert_eq!(*dfs.get_blob(&c, &a).unwrap(), vec![0xAA]);
        assert_eq!(*dfs.get_blob(&c, &b).unwrap(), vec![0xBB]);
    }

    #[test]
    fn duplicate_job_ids_are_rejected() {
        let dfs = Dfs::new();
        assert!(dfs.register_job("tenantA-fit0").is_ok());
        assert_eq!(
            dfs.register_job("tenantA-fit0"),
            Err(ClusterError::DuplicateJob { job: "tenantA-fit0".into() })
        );
        // A different id is fine, and releasing frees the name for reuse.
        assert!(dfs.register_job("tenantA-fit1").is_ok());
        dfs.release_job("tenantA-fit0");
        assert!(dfs.register_job("tenantA-fit0").is_ok());
        assert_eq!(dfs.registered_jobs(), ["tenantA-fit0", "tenantA-fit1"]);
    }

    #[test]
    fn release_job_reclaims_its_namespace_only() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.register_job("j1").unwrap();
        dfs.register_job("j2").unwrap();
        dfs.put(&c, job_scoped("j1", "ckpt"), 100);
        dfs.put(&c, job_scoped("j1", "out"), 50);
        dfs.put(&c, job_scoped("j2", "ckpt"), 70);
        dfs.put(&c, "shared/input", 999);
        assert_eq!(dfs.release_job("j1"), 150);
        assert_eq!(dfs.stat(&job_scoped("j1", "ckpt")), None);
        assert_eq!(dfs.stat(&job_scoped("j2", "ckpt")), Some(70));
        assert_eq!(dfs.stat("shared/input"), Some(999));
        assert_eq!(dfs.release_job("never-registered"), 0);
    }

    #[test]
    fn crash_of_uninvolved_node_is_a_noop() {
        let c = SimCluster::new(ClusterConfig::paper_cluster().with_dfs_replication(2));
        let dfs = Dfs::new();
        dfs.put(&c, "f", 100);
        let holders = dfs.replicas("f").unwrap();
        let outsider = (0..8).find(|n| !holders.contains(n)).unwrap();
        let (events, bytes) = dfs.on_node_crash(&c, outsider);
        assert!(events.is_empty());
        assert_eq!(bytes, 0);
        assert_eq!(dfs.replicas("f").unwrap(), holders);
    }
}
