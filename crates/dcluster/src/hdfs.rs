//! Simulated distributed filesystem.
//!
//! MapReduce jobs communicate *between* jobs through HDFS: the output of
//! `meanJob` is read by every mapper of `YtXJob`, SSVD's huge N×k `Q`
//! matrix is written and re-read, and so on. This module is a byte-metered
//! namespace — artifacts are named, sized, and charged to the cluster's
//! disk model on `put`/`get`; actual payloads stay in the engine's memory
//! (this is a simulator, not a storage system).

use std::collections::HashMap;

use std::sync::{Mutex, MutexGuard};

use crate::cluster::SimCluster;

/// Named byte-size ledger over the simulated DFS.
#[derive(Debug, Default)]
pub struct Dfs {
    files: Mutex<HashMap<String, u64>>,
}

impl Dfs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Dfs::default()
    }

    fn files(&self) -> MutexGuard<'_, HashMap<String, u64>> {
        // The ledger is plain data; ignore poisoning.
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a file of `bytes` and charges the write to the cluster.
    /// Overwrites any previous file of the same name.
    pub fn put(&self, cluster: &SimCluster, name: impl Into<String>, bytes: u64) {
        let name = name.into();
        cluster.charge_dfs_write(bytes);
        if obs::enabled() {
            cluster.trace_instant("dfs", &format!("dfs.put {name} [{bytes} B]"));
        }
        self.files().insert(name, bytes);
    }

    /// Charges a full read of the named file and returns its size.
    /// Panics if the file does not exist — that is an engine bug.
    pub fn get(&self, cluster: &SimCluster, name: &str) -> u64 {
        let bytes = *self
            .files()
            .get(name)
            .unwrap_or_else(|| panic!("dfs: no such file {name:?}"));
        cluster.charge_dfs_read(bytes);
        if obs::enabled() {
            cluster.trace_instant("dfs", &format!("dfs.get {name} [{bytes} B]"));
        }
        bytes
    }

    /// Size of the named file without charging a read.
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.files().get(name).copied()
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> u64 {
        self.files().values().sum()
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.files().len()
    }

    /// Removes a file, returning its size if it existed.
    pub fn delete(&self, name: &str) -> Option<u64> {
        self.files().remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    #[test]
    fn put_get_roundtrip_charges_io() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put(&c, "Q-matrix", 1_000_000);
        assert_eq!(dfs.get(&c, "Q-matrix"), 1_000_000);
        let m = c.metrics();
        assert_eq!(m.dfs_bytes_written, 1_000_000);
        assert_eq!(m.dfs_bytes_read, 1_000_000);
        assert!(m.virtual_time_secs > 0.0);
    }

    #[test]
    fn overwrite_replaces_size() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put(&c, "f", 100);
        dfs.put(&c, "f", 250);
        assert_eq!(dfs.stat("f"), Some(250));
        assert_eq!(dfs.total_bytes(), 250);
        assert_eq!(dfs.file_count(), 1);
    }

    #[test]
    #[should_panic(expected = "no such file")]
    fn missing_file_is_a_bug() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        let _ = dfs.get(&c, "ghost");
    }

    #[test]
    fn delete_removes() {
        let c = SimCluster::new(ClusterConfig::paper_cluster());
        let dfs = Dfs::new();
        dfs.put(&c, "tmp", 10);
        assert_eq!(dfs.delete("tmp"), Some(10));
        assert_eq!(dfs.delete("tmp"), None);
        assert_eq!(dfs.stat("tmp"), None);
    }
}
