//! Criterion micro-benches for the primitive operations behind Table 3.
//!
//! These isolate each optimization at the single-row / single-block level:
//! mean propagation vs dense centering, Frobenius Algorithm 3 vs
//! Algorithm 2, the ss3 associativity trick, and transpose-product
//! patterns (Equation (2)).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use linalg::{Mat, Prng, SparseMat};
use spca_core::{frobenius, init, mean_prop};

const ROWS: usize = 2_000;
const COLS: usize = 2_000;
const D: usize = 50;

struct Fixture {
    y: SparseMat,
    mean: Vec<f64>,
    cm: Mat,
    xm: Vec<f64>,
    c: Mat,
}

fn fixture() -> Fixture {
    let mut rng = Prng::seed_from_u64(1);
    let y = datasets::tweets::generate(ROWS, COLS, &mut rng);
    let mean = y.col_means();
    let (c, ss) = init::random_init(COLS, D, 7);
    let mut m = c.matmul_tn(&c);
    m.add_diag(ss);
    let m_inv = linalg::decomp::lu::Lu::new(&m).unwrap().inverse();
    let cm = c.matmul(&m_inv);
    let xm = cm.vecmat(&mean);
    Fixture { y, mean, cm, xm, c }
}

fn bench_mean_propagation(crit: &mut Criterion) {
    let f = fixture();
    let mut group = crit.benchmark_group("mean_propagation");
    group.sample_size(10);
    // One full pass over the matrix computing X rows.
    group.bench_function("latent_rows_sparse(opt)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..f.y.rows() {
                let x = mean_prop::latent_row(f.y.row(r), &f.cm, &f.xm);
                acc += x[0];
            }
            black_box(acc)
        })
    });
    group.bench_function("latent_rows_dense(unopt)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..f.y.rows() {
                let x = mean_prop::latent_row_dense(f.y.row(r), &f.mean, &f.cm);
                acc += x[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_frobenius(crit: &mut Criterion) {
    let f = fixture();
    let msum = linalg::vector::norm2_sq(&f.mean);
    let mut group = crit.benchmark_group("frobenius");
    group.sample_size(10);
    group.bench_function("algorithm3(opt)", |b| {
        b.iter(|| black_box(frobenius::centered_sq_block(&f.y, &f.mean, msum)))
    });
    group.bench_function("algorithm2(unopt)", |b| {
        b.iter(|| black_box(frobenius::centered_sq_simple_block(&f.y, &f.mean)))
    });
    group.finish();
}

fn bench_ss3_associativity(crit: &mut Criterion) {
    let f = fixture();
    let mut group = crit.benchmark_group("ss3_order");
    group.sample_size(10);
    // Optimized: X · (C'·y') — multiply with the sparse vector first.
    group.bench_function("x_dot_cty(opt)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..f.y.rows() {
                acc += mean_prop::ss3_row(f.y.row(r), &f.cm, &f.xm, &f.c);
            }
            black_box(acc)
        })
    });
    // Unoptimized: (X·C') · y' — a dense D-vector per row.
    group.bench_function("xct_dot_y(unopt)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..f.y.rows() {
                let x = mean_prop::latent_row(f.y.row(r), &f.cm, &f.xm);
                // Dense D-vector X·C'.
                let dense: Vec<f64> =
                    (0..COLS).map(|j| linalg::vector::dot(&x, f.c.row(j))).collect();
                acc += f.y.row(r).dot_dense(&dense);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_transpose_product(crit: &mut Criterion) {
    // Equation (2): A'B as a sum of rank-1 row products vs materializing
    // the transpose first.
    let mut rng = Prng::seed_from_u64(2);
    let left: Mat = rng.normal_mat(1_000, 64);
    let right: Mat = rng.normal_mat(1_000, 64);
    let mut group = crit.benchmark_group("transpose_product");
    group.sample_size(10);
    group.bench_function("matmul_tn(opt)", |bch| {
        bch.iter(|| black_box(left.matmul_tn(&right)))
    });
    group.bench_function("transpose_then_matmul(unopt)", |bch| {
        bch.iter(|| black_box(left.transpose().matmul(&right)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mean_propagation,
    bench_frobenius,
    bench_ss3_associativity,
    bench_transpose_product
);
criterion_main!(benches);
