//! Criterion benches of the execution engines themselves: the same
//! aggregation computed through the Spark-like accumulator path and the
//! MapReduce stateful-combiner path, plus the virtual scheduler.
//!
//! These quantify the host-side cost of the simulation substrate (not the
//! simulated times — those come from the experiment binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dcluster::{scheduler, ClusterConfig, SimCluster};
use linalg::bytes::ByteSized;
use linalg::{Prng, SparseMat};
use mapreduce::{Emitter, MapReduceEngine, MapReduceJob};
use sparkle::SparkleContext;

fn test_matrix() -> SparseMat {
    let mut rng = Prng::seed_from_u64(3);
    datasets::tweets::generate(5_000, 1_000, &mut rng)
}

/// Column-sum job for the MapReduce path.
struct ColSums;

impl MapReduceJob for ColSums {
    type Input = SparseMat;
    type Key = ();
    type Value = Vec<f64>;
    type Output = Vec<f64>;

    fn map(&self, block: &SparseMat, emitter: &mut Emitter<'_, (), Vec<f64>>) {
        emitter.emit((), block.col_sums());
    }

    fn reduce(&self, _key: (), mut values: Vec<Vec<f64>>) -> Vec<f64> {
        let mut acc = values.pop().expect("non-empty");
        for v in values {
            linalg::vector::axpy(1.0, &v, &mut acc);
        }
        acc
    }
}

/// Dense vector accumulator for the Spark path.
struct VecAcc(Vec<f64>);

impl ByteSized for VecAcc {
    fn size_bytes(&self) -> u64 {
        8 + 8 * self.0.len() as u64
    }
}

fn bench_engines(crit: &mut Criterion) {
    let y = test_matrix();
    let mut group = crit.benchmark_group("engines/col_sums");
    group.sample_size(10);

    group.bench_function("sparkle_aggregate", |b| {
        b.iter(|| {
            let cluster = SimCluster::new(ClusterConfig::paper_cluster());
            let ctx = SparkleContext::new(&cluster);
            let rows: Vec<Vec<spca_core::spark::SpRow>> =
                y.split_rows(8).iter().map(spca_core::spark::to_rows).collect();
            let rdd = ctx.from_partitions(rows);
            let cols = y.cols();
            let (sums, _) = rdd.aggregate(
                "col_sums",
                || VecAcc(vec![0.0; cols]),
                |acc, row| {
                    for (c, v) in row.view().iter() {
                        acc.0[c] += v;
                    }
                },
                |acc, other| linalg::vector::axpy(1.0, &other.0, &mut acc.0),
            );
            black_box(sums.0)
        })
    });

    group.bench_function("mapreduce_job", |b| {
        b.iter(|| {
            let cluster = SimCluster::new(ClusterConfig::paper_cluster());
            let engine = MapReduceEngine::new(&cluster).with_overheads(0.0, 0.0);
            let blocks = y.split_rows(8);
            let (out, _) = engine.run_job("col_sums", &ColSums, &blocks, 1);
            black_box(out)
        })
    });
    group.finish();
}

fn bench_scheduler(crit: &mut Criterion) {
    let durations: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
    let mut group = crit.benchmark_group("scheduler/makespan");
    group.sample_size(20);
    for cores in [16usize, 64, 256] {
        group.bench_function(format!("cores_{cores}"), |b| {
            b.iter(|| black_box(scheduler::makespan(&durations, cores)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_scheduler);
criterion_main!(benches);
