//! Figure 7 — time to 95% of ideal accuracy vs dimensionality D
//! (Tweets-like data, fixed rows), sPCA-Spark vs MLlib-PCA.
//!
//! Paper shape: MLlib-PCA's time grows quadratically with D and the
//! algorithm *fails* once the D×D covariance exceeds one machine's
//! memory (D ≈ 6,000 on the paper's 32 GB nodes; proportionally smaller
//! on this scaled cluster). sPCA-Spark grows ~linearly and never fails.

use baselines::{MllibConfig, MllibPca};
use spca_bench::{data, fmt_secs, fresh_cluster, ideal_error, target_error, Table, D_COMPONENTS};
use spca_core::{Spca, SpcaConfig};

fn main() {
    let _trace = spca_bench::cli::trace_args("fig7_time_vs_cols", "Figure 7: time to 95% of ideal accuracy vs number of columns", &[]);
    let cluster_probe = fresh_cluster();
    let cap = cluster_probe.config().driver_memory;
    let fail_d = ((cap / 16) as f64).sqrt() as usize;
    println!("=== Figure 7: time to 95% of ideal accuracy vs #columns (N = 20000) ===");
    println!(
        "(scaled driver memory {} → MLlib needs 2·D²·8 B and should fail past D ≈ {})\n",
        spca_bench::fmt_bytes(cap),
        fail_d
    );

    let rows = 20_000;
    let mut table = Table::new(&["Columns (D)", "sPCA-Spark (s)", "MLlib-PCA (s)"]);

    for cols in [512usize, 1_024, 2_048, 3_072, 4_096, 6_144] {
        eprintln!("D = {cols} …");
        let y = data::tweets(rows, cols, 1);
        let d = D_COMPONENTS.min(cols / 4).max(4);
        let ideal = ideal_error(&y, d, 7);
        let target = target_error(ideal, 95.0);

        let cluster = fresh_cluster();
        let spca = Spca::new(
            SpcaConfig::new(d)
                .with_max_iters(10)
                .with_rel_tolerance(None)
                .with_target_error(target)
                .with_partitions(16)
                .with_seed(7),
        )
        .fit_spark(&cluster, &y)
        .map(|r| fmt_secs(r.time_to_error(target).unwrap_or(r.virtual_time_secs)))
        .unwrap_or_else(|_| "Fail".into());

        let cluster = fresh_cluster();
        let mllib = MllibPca::new(MllibConfig::new(d).with_partitions(4))
            .fit(&cluster, &y)
            .map(|r| fmt_secs(r.virtual_time_secs))
            .unwrap_or_else(|e| match e {
                spca_core::SpcaError::Cluster(_) => "Fail (driver OOM)".into(),
                _ => "Fail".into(),
            });

        table.row(&[cols.to_string(), spca, mllib]);
    }
    table.print();
}
