//! Self-contained kernel benchmark: seed-naive vs blocked vs
//! blocked+threaded at the paper's sPCA shapes.
//!
//! No external harness — each variant is timed with `Instant`, best of
//! several repetitions, and the results are written as hand-rolled JSON.
//!
//! Usage:
//!   bench_kernels                  # full shapes, writes BENCH_kernels.json
//!   bench_kernels --smoke          # small shapes, quick CI sanity run
//!   bench_kernels --out FILE.json  # override the output path
//!   bench_kernels --trace T.json   # also write a Chrome trace_event file

use std::time::Instant;

use linalg::kernels::{self, naive};
use linalg::{kernels_f32, MatF32, Prng, SparseMat, WorkerPool};

/// Times `f` best-of-`reps` (minimum wall time, the usual noise filter for
/// single-machine microbenchmarks).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let v = f();
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

struct KernelResult {
    kernel: &'static str,
    shape: String,
    naive_secs: f64,
    blocked_secs: f64,
    threaded_secs: f64,
    max_abs_diff: f64,
}

impl KernelResult {
    fn speedup_blocked(&self) -> f64 {
        self.naive_secs / self.blocked_secs.max(1e-12)
    }
    fn speedup_threaded(&self) -> f64 {
        self.naive_secs / self.threaded_secs.max(1e-12)
    }
}

fn random_sparse(rng: &mut Prng, rows: usize, cols: usize, density: f64) -> SparseMat {
    let target = ((rows * cols) as f64 * density) as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        triplets.push((rng.index(rows), rng.index(cols) as u32, rng.normal()));
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_kernels",
        "Kernel microbenchmark: seed-naive vs blocked vs blocked+threaded",
        &[
            ("--smoke", "Small shapes (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_kernels.json)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    // sPCA's dominant shapes (paper Section 5): the N×d latent pass feeding
    // the YtX/XtX reduction, and the sparse Y·CM recompute.
    let (n_rows, d_cols, d_small, reps) = if smoke { (512, 128, 16, 3) } else { (8192, 1000, 32, 5) };

    let serial = WorkerPool::new(1);
    let global = WorkerPool::global();

    let mut rng = Prng::seed_from_u64(2015);
    let mut results: Vec<KernelResult> = Vec::new();

    // matmul_tn: YtX-shaped reduction, A (N×D)ᵀ · X (N×d).
    {
        let a = rng.normal_mat(n_rows, d_cols);
        let b = rng.normal_mat(n_rows, d_small);
        let (t_naive, reference) = best_of(reps, || naive::matmul_tn(&a, &b));
        let (t_blocked, blocked) = best_of(reps, || kernels::matmul_tn_with_pool(&serial, &a, &b));
        let (t_threaded, threaded) = best_of(reps, || kernels::matmul_tn_with_pool(global, &a, &b));
        results.push(KernelResult {
            kernel: "matmul_tn",
            shape: format!("({n_rows}x{d_cols})^T * ({n_rows}x{d_small})"),
            naive_secs: t_naive,
            blocked_secs: t_blocked,
            threaded_secs: t_threaded,
            max_abs_diff: blocked.max_abs_diff(&reference).max(threaded.max_abs_diff(&reference)),
        });
    }

    // sparse_mul_dense: the Y·CM recompute, ~1% dense.
    {
        let y = random_sparse(&mut rng, n_rows, d_cols, 0.01);
        let c = rng.normal_mat(d_cols, d_small);
        let (t_naive, reference) = best_of(reps, || naive::sparse_mul_dense(&y, &c));
        let (t_blocked, blocked) =
            best_of(reps, || kernels::sparse_mul_dense_with_pool(&serial, &y, &c));
        let (t_threaded, threaded) =
            best_of(reps, || kernels::sparse_mul_dense_with_pool(global, &y, &c));
        results.push(KernelResult {
            kernel: "sparse_mul_dense",
            shape: format!("sparse({n_rows}x{d_cols}, 1%) * ({d_cols}x{d_small})"),
            naive_secs: t_naive,
            blocked_secs: t_blocked,
            threaded_secs: t_threaded,
            max_abs_diff: blocked.max_abs_diff(&reference).max(threaded.max_abs_diff(&reference)),
        });
    }

    // matmul: driver-side C·M⁻¹-shaped product scaled up, (N×d)·(d×D).
    {
        let a = rng.normal_mat(n_rows / 4, d_small);
        let b = rng.normal_mat(d_small, d_cols);
        let (t_naive, reference) = best_of(reps, || naive::matmul(&a, &b));
        let (t_blocked, blocked) = best_of(reps, || kernels::matmul_with_pool(&serial, &a, &b));
        let (t_threaded, threaded) = best_of(reps, || kernels::matmul_with_pool(global, &a, &b));
        results.push(KernelResult {
            kernel: "matmul",
            shape: format!("({}x{d_small}) * ({d_small}x{d_cols})", n_rows / 4),
            naive_secs: t_naive,
            blocked_secs: t_blocked,
            threaded_secs: t_threaded,
            max_abs_diff: blocked.max_abs_diff(&reference).max(threaded.max_abs_diff(&reference)),
        });
    }

    // matmul_nt: Gram-shaped product, (m×k)·(n×k)ᵀ.
    {
        let m = n_rows / 8;
        let a = rng.normal_mat(m, d_cols);
        let b = rng.normal_mat(m, d_cols);
        let (t_naive, reference) = best_of(reps, || naive::matmul_nt(&a, &b));
        let (t_blocked, blocked) = best_of(reps, || kernels::matmul_nt_with_pool(&serial, &a, &b));
        let (t_threaded, threaded) = best_of(reps, || kernels::matmul_nt_with_pool(global, &a, &b));
        results.push(KernelResult {
            kernel: "matmul_nt",
            shape: format!("({m}x{d_cols}) * ({m}x{d_cols})^T"),
            naive_secs: t_naive,
            blocked_secs: t_blocked,
            threaded_secs: t_threaded,
            max_abs_diff: blocked.max_abs_diff(&reference).max(threaded.max_abs_diff(&reference)),
        });
    }

    // matvec: (N×D)·x.
    {
        let a = rng.normal_mat(n_rows, d_cols);
        let x = rng.normal_vec(d_cols);
        let diff = |u: &[f64], v: &[f64]| {
            u.iter().zip(v).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
        };
        let (t_naive, reference) = best_of(reps, || naive::matvec(&a, &x));
        let (t_blocked, blocked) = best_of(reps, || kernels::matvec_with_pool(&serial, &a, &x));
        let (t_threaded, threaded) = best_of(reps, || kernels::matvec_with_pool(global, &a, &x));
        results.push(KernelResult {
            kernel: "matvec",
            shape: format!("({n_rows}x{d_cols}) * x"),
            naive_secs: t_naive,
            blocked_secs: t_blocked,
            threaded_secs: t_threaded,
            max_abs_diff: diff(&blocked, &reference).max(diff(&threaded, &reference)),
        });
    }

    // Mixed-precision f32 arms of the two EM-dominant kernels, timed
    // against their threaded f64 counterparts on the same inputs. The
    // f32 result is compared to f64 after widening; the tolerance scales
    // with the reduction length (f32 has ~1e-7 ulps).
    struct F32Result {
        kernel: &'static str,
        shape: String,
        f64_secs: f64,
        f32_secs: f64,
        max_rel_diff: f64,
    }
    let mut f32_results: Vec<F32Result> = Vec::new();

    // matmul_tn f32: the packed-panel YtX reduction.
    {
        let a = rng.normal_mat(n_rows, d_cols);
        let b = rng.normal_mat(n_rows, d_small);
        let (a32, b32) = (MatF32::from_f64(&a), MatF32::from_f64(&b));
        let (t64, reference) = best_of(reps, || kernels::matmul_tn_with_pool(global, &a, &b));
        let (t32, half) =
            best_of(reps, || kernels_f32::matmul_tn_f32_with_pool(global, &a32, &b32));
        let scale = reference.data().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        f32_results.push(F32Result {
            kernel: "matmul_tn_f32",
            shape: format!("({n_rows}x{d_cols})^T * ({n_rows}x{d_small})"),
            f64_secs: t64,
            f32_secs: t32,
            max_rel_diff: half.to_f64().max_abs_diff(&reference) / scale,
        });
    }

    // sparse_mul_dense f32: the Y·CM recompute.
    {
        let y = random_sparse(&mut rng, n_rows, d_cols, 0.01);
        let c = rng.normal_mat(d_cols, d_small);
        let c32 = MatF32::from_f64(&c);
        let (t64, reference) =
            best_of(reps, || kernels::sparse_mul_dense_with_pool(global, &y, &c));
        let (t32, half) = best_of(reps, || {
            let mut out = MatF32::zeros(n_rows, d_small);
            kernels_f32::sparse_mul_dense_f32_into_with_pool(global, &y, &c32, out.data_mut());
            out
        });
        let scale = reference.data().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        f32_results.push(F32Result {
            kernel: "sparse_mul_dense_f32",
            shape: format!("sparse({n_rows}x{d_cols}, 1%) * ({d_cols}x{d_small})"),
            f64_secs: t64,
            f32_secs: t32,
            max_rel_diff: half.to_f64().max_abs_diff(&reference) / scale,
        });
    }

    // Report + hand-rolled JSON.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"pool_workers\": {},\n", global.workers()));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:>18} {:40} naive {:>9.4}s  blocked {:>9.4}s ({:.2}x)  threaded {:>9.4}s ({:.2}x)  maxdiff {:.2e}",
            r.kernel,
            r.shape,
            r.naive_secs,
            r.blocked_secs,
            r.speedup_blocked(),
            r.threaded_secs,
            r.speedup_threaded(),
            r.max_abs_diff,
        );
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"naive_secs\": {:.6e}, \"blocked_secs\": {:.6e}, \"threaded_secs\": {:.6e}, \"speedup_blocked\": {:.3}, \"speedup_threaded\": {:.3}, \"max_abs_diff\": {:.3e}}}{}\n",
            r.kernel,
            r.shape,
            r.naive_secs,
            r.blocked_secs,
            r.threaded_secs,
            r.speedup_blocked(),
            r.speedup_threaded(),
            r.max_abs_diff,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"mixed_precision\": [\n");
    for (i, r) in f32_results.iter().enumerate() {
        let speedup = r.f64_secs / r.f32_secs.max(1e-12);
        println!(
            "{:>18} {:40} f64 {:>9.4}s  f32 {:>9.4}s ({:.2}x)  maxreldiff {:.2e}",
            r.kernel, r.shape, r.f64_secs, r.f32_secs, speedup, r.max_rel_diff,
        );
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"f64_secs\": {:.6e}, \"f32_secs\": {:.6e}, \"speedup_f32\": {:.3}, \"max_rel_diff\": {:.3e}}}{}\n",
            r.kernel,
            r.shape,
            r.f64_secs,
            r.f32_secs,
            speedup,
            r.max_rel_diff,
            if i + 1 < f32_results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");

    for r in &results {
        assert!(
            r.max_abs_diff <= 1e-9,
            "{}: kernel disagrees with the naive reference ({:.3e})",
            r.kernel,
            r.max_abs_diff
        );
    }
    for r in &f32_results {
        // f32 accumulations over n_rows-length reductions: allow ~1e-7·√n
        // of relative drift, which these shapes stay far under.
        assert!(
            r.max_rel_diff <= 1e-3,
            "{}: f32 arm drifted too far from f64 ({:.3e})",
            r.kernel,
            r.max_rel_diff
        );
    }
}
