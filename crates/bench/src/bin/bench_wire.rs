//! Wire-codec benchmark: encoded bytes-per-record vs the legacy
//! `ByteSized` flat estimate, at the paper's dataset shapes.
//!
//! For each dataset (Bio-Text, Tweets) the harness measures every record
//! family the meters ship — sparse input blocks, dense latent rows, the
//! broadcast `CM` matrix, and the EM checkpoint blob — reporting the
//! encoded size (what `Sizing::Encoded` charges), the legacy estimate
//! (what `Sizing::Estimated` charges), and encode/decode throughput. It
//! then runs a short sPCA fit under both sizing policies and records the
//! end-to-end `intermediate_bytes` delta.
//!
//! Two invariants are asserted on the way:
//!   * `encoded_size() == encode().len()` for every measured record;
//!   * decoded records are bitwise identical to their sources.
//!
//! Usage:
//!   bench_wire                # paper shapes, writes BENCH_wire.json
//!   bench_wire --smoke        # small shapes, quick CI sanity run
//!   bench_wire --out FILE     # override the output path

use std::time::Instant;

use dcluster::{ClusterConfig, SimCluster};
use linalg::bytes::ByteSized;
use linalg::wire::Wire;
use linalg::{Prng, SparseMat};
use spca_bench::data;
use spca_core::checkpoint::EmCheckpoint;
use spca_core::{Spca, SpcaConfig};

/// One record family's accounting.
struct Line {
    kind: &'static str,
    count: u64,
    encoded: u64,
    estimated: u64,
    encode_secs: f64,
    decode_secs: f64,
}

impl Line {
    fn json(&self) -> String {
        let per_rec = |total: u64| total as f64 / self.count.max(1) as f64;
        format!(
            "{{\"kind\": \"{}\", \"count\": {}, \"encoded_bytes\": {}, \
             \"estimated_bytes\": {}, \"encoded_per_record\": {:.1}, \
             \"estimated_per_record\": {:.1}, \"estimate_over_encoded\": {:.3}, \
             \"encode_mb_per_sec\": {:.1}, \"decode_mb_per_sec\": {:.1}}}",
            self.kind,
            self.count,
            self.encoded,
            self.estimated,
            per_rec(self.encoded),
            per_rec(self.estimated),
            self.estimated as f64 / self.encoded.max(1) as f64,
            self.encoded as f64 / 1e6 / self.encode_secs.max(1e-12),
            self.encoded as f64 / 1e6 / self.decode_secs.max(1e-12),
        )
    }
}

/// Encodes every record, checking the size contract and a bitwise decode,
/// and returns the family's totals.
fn measure<T: Wire + PartialEq>(kind: &'static str, records: &[T]) -> Line {
    let estimated: u64 = records.iter().map(ByteSized::size_bytes).sum();
    let encoded: u64 = records.iter().map(Wire::encoded_size).sum();

    let start = Instant::now();
    let blobs: Vec<Vec<u8>> = records.iter().map(Wire::encode).collect();
    let encode_secs = start.elapsed().as_secs_f64();
    let actual: u64 = blobs.iter().map(|b| b.len() as u64).sum();
    assert_eq!(encoded, actual, "{kind}: encoded_size() drifted from encode().len()");

    let start = Instant::now();
    for (record, blob) in records.iter().zip(&blobs) {
        let back = T::decode(blob).expect("fresh encoding must decode");
        assert!(&back == record, "{kind}: decode is not the identity");
    }
    let decode_secs = start.elapsed().as_secs_f64();

    Line { kind, count: records.len() as u64, encoded, estimated, encode_secs, decode_secs }
}

/// Per-codec totals for one shuffle record family — v2 (lossless framed),
/// v3 (bitpacked lossless), v3q (bitpacked + f32 payloads) — with the v3
/// size/round-trip contracts asserted on every record.
struct CodecLine {
    kind: &'static str,
    v2: u64,
    v3: u64,
    v3q: u64,
}

impl CodecLine {
    fn json(&self) -> String {
        format!(
            "{{\"kind\": \"{}\", \"v2_bytes\": {}, \"v3_bytes\": {}, \"v3q_bytes\": {}, \
             \"v2_over_v3\": {:.3}, \"v2_over_v3q\": {:.3}}}",
            self.kind,
            self.v2,
            self.v3,
            self.v3q,
            self.v2 as f64 / self.v3.max(1) as f64,
            self.v2 as f64 / self.v3q.max(1) as f64,
        )
    }
}

fn measure_codecs<T: Wire + PartialEq>(kind: &'static str, records: &[T]) -> CodecLine {
    let v2: u64 = records.iter().map(Wire::encoded_size).sum();
    let mut v3 = 0u64;
    let mut v3q = 0u64;
    for r in records {
        let blob = r.encode_v3(false);
        assert_eq!(blob.len() as u64, r.encoded_size_v3(false), "{kind}: v3 size contract");
        let back = T::decode_v3(&blob).expect("fresh v3 encoding must decode");
        assert!(&back == r, "{kind}: lossless v3 decode is not the identity");
        v3 += blob.len() as u64;
        let qblob = r.encode_v3(true);
        assert_eq!(qblob.len() as u64, r.encoded_size_v3(true), "{kind}: v3q size contract");
        T::decode_v3(&qblob).expect("fresh v3q encoding must decode");
        v3q += qblob.len() as u64;
    }
    CodecLine { kind, v2, v3, v3q }
}

/// `intermediate_bytes` of a short Spark fit with the given shuffle codec.
fn fit_intermediate_codec(
    codec: linalg::WireCodec,
    y: &SparseMat,
    d: usize,
    iters: usize,
) -> u64 {
    let cluster = SimCluster::new(ClusterConfig::paper_cluster().with_wire_codec(codec));
    let run = Spca::new(
        SpcaConfig::new(d)
            .with_max_iters(iters)
            .with_rel_tolerance(None)
            .with_partitions(8)
            .with_seed(7),
    )
    .fit_spark(&cluster, y)
    .expect("bench fit");
    run.intermediate_bytes
}

/// `intermediate_bytes` of a short MapReduce fit under one sizing policy.
fn fit_intermediate(estimated: bool, y: &SparseMat, d: usize, iters: usize) -> u64 {
    let cfg = ClusterConfig::paper_cluster();
    let cfg = if estimated { cfg.with_estimated_sizes() } else { cfg };
    let cluster = SimCluster::new(cfg);
    let run = Spca::new(
        SpcaConfig::new(d)
            .with_max_iters(iters)
            .with_rel_tolerance(None)
            .with_partitions(8)
            .with_seed(7),
    )
    .fit_mapreduce(&cluster, y)
    .expect("bench fit");
    run.intermediate_bytes
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_wire",
        "Wire-codec benchmark: encoded bytes-per-record vs the ByteSized estimate",
        &[
            ("--smoke", "Small shapes (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_wire.json)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_wire.json".to_string());

    // The Section 5.2 shapes (intermediate_data uses the same), shrunk
    // proportionally for the smoke gate.
    let (cases, d, iters, partitions) = if smoke {
        (
            vec![("Bio-Text", data::biotext(2_000, 800, 2)), ("Tweets", data::tweets(3_000, 600, 1))],
            8,
            2,
            8,
        )
    } else {
        (
            vec![
                ("Bio-Text", data::biotext(50_000, 10_000, 2)),
                ("Tweets", data::tweets(300_000, 8_000, 1)),
            ],
            spca_bench::D_COMPONENTS,
            3,
            8,
        )
    };

    let mut dataset_jsons = Vec::new();
    for (name, y) in &cases {
        let mut rng = Prng::seed_from_u64(0x17e);
        println!(
            "{name}: {}x{} ({} nnz, {:.2e} dense)",
            y.rows(),
            y.cols(),
            y.nnz(),
            y.nnz() as f64 / (y.rows() as f64 * y.cols() as f64)
        );

        // The families every metered path ships, at this dataset's shape.
        let blocks = y.split_rows(partitions);
        let latent_rows: Vec<Vec<f64>> =
            (0..256.min(y.rows())).map(|_| (0..d).map(|_| rng.normal()).collect()).collect();
        let cm = vec![rng.normal_mat(y.cols(), d)];
        let ckpt = vec![EmCheckpoint {
            iteration: iters,
            c: rng.normal_mat(y.cols(), d),
            ss: 0.137,
            prev_error: 1.618,
        }];

        let lines = vec![
            measure("input_block", &blocks),
            measure("latent_row", &latent_rows),
            measure("broadcast_cm", &cm),
            checkpoint_line(&ckpt[0]),
        ];
        for l in &lines {
            println!(
                "  {:>12}: {:>6} records, {:>12} B encoded vs {:>12} B estimated ({:.3}x)",
                l.kind,
                l.count,
                l.encoded,
                l.estimated,
                l.estimated as f64 / l.encoded.max(1) as f64
            );
        }

        // The v3 fast path, family by family. The term-count datasets are
        // integral-valued, so lossless v3 collapses the 8-byte payloads to
        // ~1 byte and bitpacks the index gaps: the acceptance bar is a 2x
        // shrink on the sparse shuffle family without any quantization.
        let codec_lines = vec![
            measure_codecs("input_block", &blocks),
            measure_codecs("latent_row", &latent_rows),
            measure_codecs("broadcast_cm", &cm),
        ];
        for l in &codec_lines {
            println!(
                "  {:>12}: v2 {:>12} B  v3 {:>12} B ({:.3}x)  v3q {:>12} B ({:.3}x)",
                l.kind,
                l.v2,
                l.v3,
                l.v2 as f64 / l.v3.max(1) as f64,
                l.v3q,
                l.v2 as f64 / l.v3q.max(1) as f64,
            );
        }
        let sparse = &codec_lines[0];
        assert!(
            sparse.v3 * 2 <= sparse.v2,
            "{name}: v3 must shrink sparse shuffle records at least 2x \
             (v2={} v3={})",
            sparse.v2,
            sparse.v3
        );

        let enc_fit = fit_intermediate(false, y, d, iters);
        let est_fit = fit_intermediate(true, y, d, iters);
        assert!(enc_fit < est_fit, "{name}: encoded fit must undercut the estimate");
        println!(
            "  fit intermediate: {enc_fit} B encoded vs {est_fit} B estimated ({:.3}x)",
            est_fit as f64 / enc_fit as f64
        );

        // End-to-end: the same short Spark fit under each shuffle codec.
        // The model is codec-invariant; only the byte meters move.
        let fit_v2 = fit_intermediate_codec(linalg::WireCodec::V2, y, d, iters);
        let fit_v3 = fit_intermediate_codec(linalg::WireCodec::V3, y, d, iters);
        let fit_v3q = fit_intermediate_codec(linalg::WireCodec::V3Quantized, y, d, iters);
        assert!(fit_v3 < fit_v2, "{name}: v3 fit must undercut v2");
        assert!(fit_v3q <= fit_v3, "{name}: quantized v3 must never exceed lossless v3");
        println!(
            "  fit by codec: v2 {fit_v2} B  v3 {fit_v3} B ({:.3}x)  v3q {fit_v3q} B ({:.3}x)",
            fit_v2 as f64 / fit_v3 as f64,
            fit_v2 as f64 / fit_v3q as f64,
        );

        let records = lines.iter().map(Line::json).collect::<Vec<_>>().join(",\n      ");
        let codecs = codec_lines.iter().map(CodecLine::json).collect::<Vec<_>>().join(",\n      ");
        dataset_jsons.push(format!(
            "{{\n    \"name\": \"{name}\",\n    \"shape\": {{\"rows\": {}, \"cols\": {}, \"nnz\": {}}},\n    \"records\": [\n      {records}\n    ],\n    \"codecs\": [\n      {codecs}\n    ],\n    \"fit\": {{\"engine\": \"mapreduce\", \"iters\": {iters}, \"encoded_intermediate_bytes\": {enc_fit}, \"estimated_intermediate_bytes\": {est_fit}, \"estimate_over_encoded\": {:.3}}},\n    \"fit_by_codec\": {{\"engine\": \"spark\", \"iters\": {iters}, \"v2_bytes\": {fit_v2}, \"v3_bytes\": {fit_v3}, \"v3q_bytes\": {fit_v3q}, \"v2_over_v3\": {:.3}}}\n  }}",
            y.rows(),
            y.cols(),
            y.nnz(),
            est_fit as f64 / enc_fit as f64,
            fit_v2 as f64 / fit_v3.max(1) as f64,
        ));
    }

    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"components\": {d},\n  \"datasets\": [{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        dataset_jsons.join(", "),
    );
    obs::json::validate(&json).expect("benchmark JSON must be valid");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}

/// The checkpoint is framed with its own magic rather than the `Wire`
/// trait, so it gets a bespoke line: "estimated" is the fixed-header v1
/// blob length the previous format produced.
fn checkpoint_line(ck: &EmCheckpoint) -> Line {
    let start = Instant::now();
    let blob = ck.encode();
    let encode_secs = start.elapsed().as_secs_f64();
    assert_eq!(blob.len() as u64, ck.encoded_size(), "checkpoint size contract");
    let start = Instant::now();
    let back = EmCheckpoint::decode(&blob).expect("checkpoint decodes");
    let decode_secs = start.elapsed().as_secs_f64();
    assert_eq!(&back, ck, "checkpoint decode is not the identity");
    // v1 layout: 8-byte magic, u32 version, three fixed u64 header ints,
    // two f64 scalars, then the dense payload.
    let v1_len = 8 + 4 + 3 * 8 + 2 * 8 + 8 * (ck.c.rows() * ck.c.cols()) as u64;
    Line {
        kind: "checkpoint",
        count: 1,
        encoded: blob.len() as u64,
        estimated: v1_len,
        encode_secs,
        decode_secs,
    }
}
