//! One small sPCA run on *both* engines with full tracing, printed as a
//! hierarchical text report and (optionally) exported as Chrome-trace
//! JSON — the quickest way to see the run → iteration → stage span tree
//! and compare sPCA-on-Spark with sPCA-on-MapReduce side by side in both
//! clock domains.
//!
//! Usage:
//!   trace_report                   # print the text report
//!   trace_report --trace T.json    # also write the Chrome trace file

use dcluster::SimCluster;
use spca_bench::{data, fmt_bytes, fmt_secs, fresh_cluster, Table};
use spca_core::{Spca, SpcaConfig};

fn stage_table(label: &str, cluster: &SimCluster) {
    let metrics = cluster.metrics();
    let cores = cluster.config().total_cores();
    println!("\n-- stages: {label} --");
    let mut table = Table::new(&["Stage", "Tasks", "Virtual (s)", "CPU (s)", "Utilization"]);
    for s in &metrics.stages {
        table.row(&[
            s.label.clone(),
            s.tasks.to_string(),
            format!("{:.4}", s.compute_secs),
            format!("{:.4}", s.cpu_secs),
            format!("{:.1}%", 100.0 * s.utilization(cores)),
        ]);
    }
    table.print();
    println!(
        "{label}: {} virtual s, {} intermediate ({} network, {} DFS written), {} clock violations",
        fmt_secs(metrics.virtual_time_secs),
        fmt_bytes(metrics.intermediate_bytes),
        fmt_bytes(metrics.network_bytes),
        fmt_bytes(metrics.dfs_bytes_written),
        metrics.clock_violations,
    );
}

fn main() {
    let trace = spca_bench::cli::trace_args(
        "trace_report",
        "Trace one small sPCA run on both engines and print the span-tree report",
        &[],
    );
    // With no --trace flag, still collect (for the text report) — install
    // a collector ourselves.
    let collector = match trace.collector() {
        Some(c) => c.clone(),
        None => obs::install_new(),
    };

    let y = data::tweets(4_000, 800, 1);
    let config = SpcaConfig::new(8).with_max_iters(3).with_partitions(16).with_seed(7);

    let spark_cluster = fresh_cluster();
    let spark_run =
        Spca::new(config.clone()).fit_spark(&spark_cluster, &y).expect("sPCA-Spark run");
    let mr_cluster = fresh_cluster();
    let mr_run =
        Spca::new(config).fit_mapreduce(&mr_cluster, &y).expect("sPCA-MapReduce run");

    println!("=== trace report: sPCA-Spark vs sPCA-MapReduce (4000 x 800, d=8) ===");
    println!(
        "Spark: {} virtual s over {} iterations; MapReduce: {} virtual s over {} iterations",
        fmt_secs(spark_run.virtual_time_secs),
        spark_run.iterations.len(),
        fmt_secs(mr_run.virtual_time_secs),
        mr_run.iterations.len(),
    );

    stage_table("sPCA-Spark", &spark_cluster);
    stage_table("sPCA-MapReduce", &mr_cluster);

    println!("\n-- span tree (virtual + host clock domains) --");
    let spark_reg = spark_cluster.registry();
    let mr_reg = mr_cluster.registry();
    let report = obs::report::text_report(
        &collector.events(),
        &[
            ("sPCA-Spark cluster", &spark_reg),
            ("sPCA-MapReduce cluster", &mr_reg),
            ("collector", collector.registry()),
        ],
    );
    print!("{report}");

    assert_eq!(collector.nesting_violations(), 0, "span nesting must be well-formed");
    // The TraceGuard exports on drop when --trace was given.
}
