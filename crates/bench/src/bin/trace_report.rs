//! One small sPCA run on *both* engines with full tracing, printed as a
//! hierarchical text report and (optionally) exported as Chrome-trace
//! JSON — the quickest way to see the run → iteration → stage span tree
//! and compare sPCA-on-Spark with sPCA-on-MapReduce side by side in both
//! clock domains.
//!
//! Usage:
//!   trace_report                     # print the text report
//!   trace_report --trace T.json      # also write the Chrome trace file
//!   trace_report --timing contended  # price I/O with the event-driven
//!                                    # shared-bandwidth model and print
//!                                    # the per-link contention tables

use std::collections::BTreeMap;
use std::sync::Arc;

use dcluster::{
    ClusterConfig, FaultPlan, FaultSpec, SchedulerPolicy, SimCluster, TimingModel,
};
use linalg::{Precision, WireCodec};
use spca_bench::{data, fmt_bytes, fmt_secs, fresh_cluster, Table};
use spca_core::serving::{run_serving, FitJob, ServeLoad, ServeSpec, TenantWorkload};
use spca_core::{Spca, SpcaConfig, SpcaError, SpcaRun};

fn stage_table(label: &str, cluster: &SimCluster) {
    let metrics = cluster.metrics();
    let cores = cluster.config().total_cores();
    println!("\n-- stages: {label} --");
    let mut table = Table::new(&["Stage", "Tasks", "Virtual (s)", "CPU (s)", "Utilization"]);
    for s in &metrics.stages {
        table.row(&[
            s.label.clone(),
            s.tasks.to_string(),
            format!("{:.4}", s.compute_secs),
            format!("{:.4}", s.cpu_secs),
            format!("{:.1}%", 100.0 * s.utilization(cores)),
        ]);
    }
    table.print();
    println!(
        "{label}: {} virtual s, {} intermediate ({} network, {} DFS written), {} clock violations",
        fmt_secs(metrics.virtual_time_secs),
        fmt_bytes(metrics.intermediate_bytes),
        fmt_bytes(metrics.network_bytes),
        fmt_bytes(metrics.dfs_bytes_written),
        metrics.clock_violations,
    );
}

/// Per-link contention table (contended timing only): capacity, carried
/// bytes, busy time and peak utilization for every modeled link, plus the
/// engine counters. The peak-utilization column doubles as the invariant
/// check — no link is ever allocated past 100 % at any virtual instant.
fn link_table(label: &str, cluster: &SimCluster) {
    let stats = cluster.link_stats();
    if stats.is_empty() {
        return;
    }
    println!("\n-- link contention: {label} --");
    let mut table = Table::new(&["Link", "Capacity (B/s)", "Bytes", "Busy (s)", "Peak util"]);
    for l in &stats {
        assert!(
            l.peak_util <= 1.0 + 1e-9,
            "link {} allocated past capacity: {}",
            l.label,
            l.peak_util
        );
        table.row(&[
            l.label.clone(),
            format!("{:.0}", l.capacity),
            fmt_bytes(l.bytes as u64),
            format!("{:.4}", l.busy_secs),
            format!("{:.1}%", 100.0 * l.peak_util),
        ]);
    }
    table.print();
    if let Some(engine) = cluster.engine_stats() {
        println!(
            "{label}: {} events, {} rate re-solves, {} peak concurrent flows; \
             every link ≤ 100% at every virtual instant",
            engine.events, engine.resolves, engine.peak_flows
        );
    }
}

fn main() {
    let trace = spca_bench::cli::trace_args(
        "trace_report",
        "Trace one small sPCA run on both engines and print the span-tree report",
        &[
            ("--timing MODEL", "I/O timing model: uncontended (default) | contended"),
            ("--tenant NAME", "Only show NAME's row in the serving table"),
        ],
    );
    let argv: Vec<String> = std::env::args().collect();
    let tenant_filter = argv
        .iter()
        .position(|a| a == "--tenant")
        .and_then(|i| argv.get(i + 1).cloned());
    let timing = match argv.iter().position(|a| a == "--timing") {
        Some(i) => {
            let value = argv.get(i + 1).map(String::as_str).unwrap_or("");
            match TimingModel::parse(value) {
                Some(t) => t,
                None => {
                    eprintln!("error: --timing needs uncontended|contended, got {value:?}");
                    std::process::exit(2);
                }
            }
        }
        None => TimingModel::default(),
    };
    // With no --trace flag, still collect (for the text report) — install
    // a collector ourselves.
    let collector = match trace.collector() {
        Some(c) => c.clone(),
        None => obs::install_new(),
    };

    let y = data::tweets(4_000, 800, 1);
    let config = SpcaConfig::new(8).with_max_iters(3).with_partitions(16).with_seed(7);

    let timed_cluster =
        || SimCluster::new(ClusterConfig::scaled_cluster().with_timing(timing));
    let spark_cluster = timed_cluster();
    let spark_run =
        Spca::new(config.clone()).fit_spark(&spark_cluster, &y).expect("sPCA-Spark run");
    let mr_cluster = timed_cluster();
    let mr_run =
        Spca::new(config.clone()).fit_mapreduce(&mr_cluster, &y).expect("sPCA-MapReduce run");

    println!(
        "=== trace report: sPCA-Spark vs sPCA-MapReduce (4000 x 800, d=8, {timing} timing) ==="
    );
    println!(
        "Spark: {} virtual s over {} iterations; MapReduce: {} virtual s over {} iterations",
        fmt_secs(spark_run.virtual_time_secs),
        spark_run.iterations.len(),
        fmt_secs(mr_run.virtual_time_secs),
        mr_run.iterations.len(),
    );

    stage_table("sPCA-Spark", &spark_cluster);
    stage_table("sPCA-MapReduce", &mr_cluster);
    link_table("sPCA-Spark", &spark_cluster);
    link_table("sPCA-MapReduce", &mr_cluster);

    // Under contended timing, quantify the contention the arithmetic
    // model cannot see: the same Spark fit priced by both models. The
    // byte meters must agree exactly; only virtual time moves.
    if timing == TimingModel::Contended {
        let reference = fresh_cluster();
        let reference_run = Spca::new(config.clone())
            .fit_spark(&reference, &y)
            .expect("uncontended reference run");
        assert_eq!(
            reference.metrics().network_bytes,
            spark_cluster.metrics().network_bytes,
            "byte meters must be timing-model-invariant"
        );
        let contended_net_us = spark_cluster.category_time_us()[2];
        let reference_net_us = reference.category_time_us()[2];
        println!(
            "\ncontention delta (sPCA-Spark): {} virtual s contended vs {} uncontended; \
             network {:.3}s vs {:.3}s ({:+.1}% from shared-bandwidth queueing)",
            fmt_secs(spark_run.virtual_time_secs),
            fmt_secs(reference_run.virtual_time_secs),
            contended_net_us as f64 * 1e-6,
            reference_net_us as f64 * 1e-6,
            100.0 * (contended_net_us as f64 / reference_net_us as f64 - 1.0),
        );
        assert!(
            contended_net_us > reference_net_us,
            "concurrent shuffles must contend under the event-driven model \
             ({contended_net_us}us vs {reference_net_us}us)"
        );
    }

    // A cheap-arm run — f32 kernels plus the quantized v3 shuffle codec —
    // traced alongside the reference arms and summarized per arm below.
    let f32_cluster = SimCluster::new(
        ClusterConfig::scaled_cluster()
            .with_wire_codec(WireCodec::V3Quantized)
            .with_timing(timing),
    );
    let f32_run = Spca::new(config.clone().with_precision(Precision::F32))
        .fit_spark(&f32_cluster, &y)
        .expect("sPCA-Spark f32 run");
    stage_table("sPCA-Spark f32+v3q", &f32_cluster);

    println!("\n-- arms: precision x codec --");
    let mut arms = Table::new(&[
        "Run",
        "Precision",
        "Codec",
        "Virtual (s)",
        "Intermediate",
        "Final error",
    ]);
    let mut arm_row = |label: &str, precision: Precision, cluster: &SimCluster, run: &SpcaRun| {
        arms.row(&[
            label.to_string(),
            precision.label().to_string(),
            cluster.wire_codec().label().to_string(),
            format!("{:.4}", run.virtual_time_secs),
            fmt_bytes(run.intermediate_bytes),
            format!("{:.4}", run.final_error()),
        ]);
    };
    arm_row("sPCA-Spark", Precision::F64, &spark_cluster, &spark_run);
    arm_row("sPCA-MapReduce", Precision::F64, &mr_cluster, &mr_run);
    arm_row("sPCA-Spark f32+v3q", Precision::F32, &f32_cluster, &f32_run);
    arms.print();
    assert!(
        f32_run.intermediate_bytes < spark_run.intermediate_bytes,
        "the v3q arm must shrink the shuffle byte meter"
    );

    // A third run under chaos — two node crashes, stragglers, speculation,
    // a checkpointed driver crash with resume — to exercise the recovery
    // event log end to end. The resumed model must equal the clean Spark
    // run bit for bit.
    let faulty_cluster = timed_cluster();
    let spec = FaultSpec::new(7)
        .with_straggler_rate(0.2)
        .with_straggler_slowdown(5.0)
        .with_speculation(true);
    faulty_cluster
        .install_fault_plan(spec, FaultPlan::new().with_crash(1, 2).with_crash(4, 4))
        .expect("valid fault plan");
    let faulty_config = config.clone().with_checkpoint_every(1);
    match Spca::new(faulty_config.clone().with_crash_at_iteration(2))
        .fit_spark(&faulty_cluster, &y)
    {
        Err(SpcaError::DriverCrashed { .. }) => {}
        other => panic!("expected the injected driver crash, got {other:?}"),
    }
    let resumed =
        Spca::new(faulty_config).fit_spark(&faulty_cluster, &y).expect("resumed run");
    let bitwise_equal = resumed
        .model
        .components()
        .data()
        .iter()
        .zip(spark_run.model.components().data())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && resumed.model.noise_variance().to_bits() == spark_run.model.noise_variance().to_bits();
    assert!(bitwise_equal, "recovery must reproduce the clean model bit for bit");

    println!("\n-- recovery events: sPCA-Spark under chaos (crash/resume) --");
    let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
    for event in faulty_cluster.recovery_log() {
        *kinds.entry(event.kind()).or_insert(0) += 1;
    }
    let mut table = Table::new(&["Event", "Count"]);
    for (kind, count) in &kinds {
        table.row(&[kind.to_string(), count.to_string()]);
    }
    table.print();
    let faulty_reg = faulty_cluster.registry();
    let saved = faulty_reg.histogram("faults.speculation_saved_secs");
    println!(
        "recovered bitwise-identical model; {} re-replicated, {} checkpointed, {} saved by speculation",
        fmt_bytes(faulty_reg.counter("faults.replication_bytes").get()),
        fmt_bytes(faulty_reg.counter("faults.checkpoint_bytes").get()),
        fmt_secs(saved.mean() * saved.count() as f64),
    );

    // A fourth workload — multi-tenant: a heavy tenant flooding the fit
    // queue under the fair-share scheduler while two tenants serve
    // projection requests against their fitted models. Runs after the
    // resumed fit so the ledger's long-standing run indices (spark, mr,
    // f32, resumed) stay put; the serving fits append behind them.
    println!("\n-- serving: fit queue + projection requests (fair-share) --");
    let serve_cluster = SimCluster::new(
        ClusterConfig::scaled_cluster()
            .with_timing(timing)
            .with_scheduler(SchedulerPolicy::FairShare)
            .with_fair_share_weights(vec![1.0, 1.0, 1.0]),
    );
    let total_cores = serve_cluster.config().total_cores();
    let y_small = Arc::new(data::tweets(600, 200, 3));
    let small_config =
        SpcaConfig::new(4).with_max_iters(2).with_seed(11).with_rel_tolerance(None);
    let mut serve_spec = ServeSpec::new(0x7e);
    let mut heavy = TenantWorkload { name: "heavy".into(), ..Default::default() };
    for i in 0..3 {
        heavy.fit_jobs.push(FitJob {
            id: format!("heavy-{i}"),
            submit_secs: 0.01 * i as f64,
            cores: total_cores,
            y: Arc::clone(&y_small),
            config: small_config.clone(),
        });
    }
    serve_spec.tenants.push(heavy);
    serve_spec.tenants.push(TenantWorkload {
        name: "alpha".into(),
        fit_jobs: vec![FitJob {
            id: "alpha-fit".into(),
            submit_secs: 0.5,
            cores: (total_cores / 8).max(1),
            y: Arc::clone(&y_small),
            config: small_config,
        }],
        serve: Some(ServeLoad {
            pool: Arc::clone(&y_small),
            batches: 40,
            batch_rows: 5,
            rate_per_sec: 40.0,
            start_secs: 0.0,
        }),
        model: None,
    });
    serve_spec.tenants.push(TenantWorkload {
        name: "gamma".into(),
        fit_jobs: vec![],
        serve: Some(ServeLoad {
            pool: Arc::new(y.clone()),
            batches: 30,
            batch_rows: 4,
            rate_per_sec: 30.0,
            start_secs: 0.0,
        }),
        // Serves from the clean Spark run's model, ready at t=0.
        model: Some(spark_run.model.clone()),
    });
    let serving = run_serving(&serve_cluster, &serve_spec).expect("serving run");
    let mut serve_table = Table::new(&[
        "Tenant",
        "Jobs",
        "Rejected",
        "Wait (s)",
        "Run (s)",
        "Requests",
        "QPS",
        "Cache hit",
        "p50 (s)",
        "p99 (s)",
    ]);
    let mut filter_matched = false;
    for t in &serving.tenants {
        if let Some(only) = &tenant_filter {
            if &t.name != only {
                continue;
            }
        }
        filter_matched = true;
        serve_table.row(&[
            t.name.clone(),
            format!("{} (-{})", t.jobs_completed, t.jobs_rejected),
            t.batches_rejected.to_string(),
            format!("{:.3}", t.wait_secs_total),
            format!("{:.3}", t.run_secs_total),
            t.requests.to_string(),
            format!("{:.1}", t.qps),
            format!("{:.1}%", 100.0 * t.cache_hit_rate()),
            format!("{:.4}", t.latency_p50_secs),
            format!("{:.4}", t.latency_p99_secs),
        ]);
    }
    serve_table.print();
    if let Some(only) = &tenant_filter {
        assert!(filter_matched, "--tenant {only:?} matches no tenant in the serving mix");
    }
    println!(
        "serving: {} requests in {} batches ({} rejected), {} model pushes, \
         p50 {} / p99 {} virtual latency, makespan {}, trace {:#018x}",
        serving.requests_total,
        serving.batches_total,
        serving.rejected_total,
        serving.broadcasts,
        fmt_secs(serving.latency_p50_secs),
        fmt_secs(serving.latency_p99_secs),
        fmt_secs(serving.makespan_secs),
        serving.trace_hash,
    );
    assert!(serving.latency_p99_secs >= serving.latency_p50_secs);
    assert_eq!(serving.batches_total + serving.rejected_total, 70);

    // Critical-path profile: reconstruct the per-iteration causality chain
    // from the segment events and attribute every window's makespan to
    // cpu / scheduler / network / disk / recovery / idle.
    println!("\n-- critical path: per-window makespan attribution --");
    let profiles = obs::critpath::analyze(&collector.events());
    print!("{}", obs::critpath::render(&profiles));
    for p in &profiles {
        for w in p.iterations.iter().chain(p.run.iter()) {
            let makespan = w.makespan_us();
            assert!(
                w.path_us() <= makespan,
                "{}/{}: critical path {}us exceeds makespan {}us",
                p.name,
                w.label,
                w.path_us(),
                makespan
            );
            assert_eq!(
                w.attribution.total_us(),
                makespan,
                "{}/{}: category attribution must sum to the makespan",
                p.name,
                w.label
            );
        }
    }

    if let Some(warning) = obs::report::dropped_warning(collector.dropped()) {
        print!("{warning}");
    }
    println!("\n-- span tree (virtual + host clock domains) --");
    let spark_reg = spark_cluster.registry();
    let mr_reg = mr_cluster.registry();
    let report = obs::report::text_report(
        &collector.events(),
        &[
            ("sPCA-Spark cluster", &spark_reg),
            ("sPCA-MapReduce cluster", &mr_reg),
            ("collector", collector.registry()),
        ],
    );
    print!("{report}");

    assert_eq!(collector.nesting_violations(), 0, "span nesting must be well-formed");
    // The TraceGuard exports on drop when --trace was given.
}
