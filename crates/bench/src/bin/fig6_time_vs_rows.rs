//! Figure 6 — time to reach 95% of ideal accuracy vs number of rows
//! (Tweets-like data, fixed dimensionality), sPCA-MapReduce vs
//! Mahout-PCA, log-log.
//!
//! Paper shape: the two are comparable on small inputs (Hadoop overheads
//! dominate), then Mahout's running time grows much faster with N — two
//! orders of magnitude slower at the large end — while sPCA's grows at a
//! much smaller rate.

use baselines::{MahoutConfig, MahoutPca};
use spca_bench::{data, fmt_secs, fresh_cluster, ideal_error, target_error, Table, D_COMPONENTS};
use spca_core::{Spca, SpcaConfig};

fn main() {
    let _trace = spca_bench::cli::trace_args("fig6_time_vs_rows", "Figure 6: time to 95% of ideal accuracy vs number of rows", &[]);
    println!("=== Figure 6: time to 95% of ideal accuracy vs #rows (D = 4000) ===\n");
    let cols = 4_000;
    let mut table = Table::new(&["Rows", "sPCA-MapReduce (s)", "Mahout-PCA (s)", "ratio"]);

    for rows in [4_000usize, 16_000, 64_000, 256_000] {
        eprintln!("rows = {rows} …");
        let y = data::tweets(rows, cols, 1);
        let d = D_COMPONENTS.min(rows / 4).max(4);
        let ideal = ideal_error(&y, d, 7);
        let target = target_error(ideal, 95.0);

        let cluster = fresh_cluster();
        let spca = Spca::new(
            SpcaConfig::new(d)
                .with_max_iters(10)
                .with_rel_tolerance(None)
                .with_target_error(target)
                .with_partitions(8)
                .with_seed(7),
        )
        .fit_mapreduce(&cluster, &y)
        .expect("sPCA run");
        let spca_secs = spca.time_to_error(target).unwrap_or(spca.virtual_time_secs);

        let cluster = fresh_cluster();
        let mahout = MahoutPca::new(
            MahoutConfig::new(d)
                .with_max_iters(3)
                .with_target_error(target)
                .with_partitions(8)
                .with_seed(7),
        )
        .fit(&cluster, &y)
        .expect("Mahout run");
        let mahout_secs = mahout.time_to_error(target).unwrap_or(mahout.virtual_time_secs);

        table.row(&[
            rows.to_string(),
            fmt_secs(spca_secs),
            fmt_secs(mahout_secs),
            format!("{:.1}x", mahout_secs / spca_secs),
        ]);
    }
    table.print();
    println!("\n(the ratio column should grow with N: Mahout's intermediate data");
    println!(" scales with rows, sPCA's does not)");
}
