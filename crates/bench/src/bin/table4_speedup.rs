//! Table 4 — speedup of sPCA-Spark with cluster size (16/32/64 cores).
//!
//! Paper shape: near-ideal linear speedup (1 → 1.95 → 3.82), because the
//! per-iteration work is embarrassingly row-parallel and sPCA's
//! communication is tiny.

use spca_bench::{data, fmt_secs, Table, D_COMPONENTS};
use spca_core::{Spca, SpcaConfig};

fn main() {
    let _trace = spca_bench::cli::trace_args("table4_speedup", "Table 4: sPCA-Spark speedup vs cluster size", &[]);
    println!("=== Table 4: sPCA-Spark speedup vs cluster size (Tweets 100K x 8K) ===\n");
    let y = data::tweets(100_000, 8_000, 1);
    let d = D_COMPONENTS;
    // 64 partitions in every run so the task set is identical and only the
    // core count varies — the paper's setup (2/4/8 nodes × 8 cores).
    let config = SpcaConfig::new(d)
        .with_max_iters(5)
        .with_rel_tolerance(None)
        .with_partitions(64)
        .with_seed(7);

    let mut results: Vec<(usize, f64)> = Vec::new();
    for nodes in [2usize, 4, 8] {
        eprintln!("{} nodes ({} cores) …", nodes, nodes * 8);
        let cluster = dcluster::SimCluster::new(
            dcluster::ClusterConfig::paper_cluster().with_nodes(nodes),
        );
        let run = Spca::new(config.clone()).fit_spark(&cluster, &y).expect("fit");
        results.push((nodes * 8, run.virtual_time_secs));
    }

    let base = results[0].1;
    let mut table = Table::new(&["Cores", "Running time (s)", "Speedup"]);
    for (cores, secs) in &results {
        table.row(&[
            cores.to_string(),
            fmt_secs(*secs),
            format!("{:.2}", base / secs),
        ]);
    }
    table.print();
    println!("\n(paper: 22,680 s / 11,640 s / 5,940 s → speedups 1 / 1.95 / 3.82)");
}
