//! Table 2 — running time of the four algorithms on the four datasets.
//!
//! Paper protocol (Section 5.1): every algorithm computes 50 principal
//! components; the iterative algorithms (sPCA, Mahout-PCA) run until they
//! reach 95% of the ideal accuracy, capped at 10 iterations; MLlib-PCA is
//! deterministic and runs to completion or fails. The paper's headline
//! shapes this reproduction must show:
//!
//! * sPCA-Spark beats MLlib-PCA wherever MLlib works;
//! * MLlib-PCA fails outright above a dimensionality threshold;
//! * sPCA-MapReduce beats Mahout-PCA by a growing margin;
//! * on the low-dimensional dense Images dataset, MLlib-PCA wins.

use baselines::{MahoutConfig, MahoutPca, MllibConfig, MllibPca};
use linalg::SparseMat;
use spca_bench::{data, fmt_secs, fresh_cluster, ideal_error, target_error, Table, D_COMPONENTS};
use spca_core::{Spca, SpcaConfig};

struct Case {
    dataset: &'static str,
    label: String,
    y: SparseMat,
}

fn main() {
    let _trace = spca_bench::cli::trace_args("table2_runtime", "Table 2: running time to 95% of ideal accuracy", &[]);
    println!("=== Table 2: running time (simulated seconds) to 95% of ideal accuracy ===");
    println!("(paper: Tweets 1.26B rows / Bio-Text 8.2M / Diabetes 353 / Images 160M;");
    println!(" reproduction runs scaled replicas — compare shapes, not absolutes)\n");

    let cases = build_cases();
    let mut table = Table::new(&[
        "Dataset",
        "Size",
        "sPCA-Spark",
        "MLlib-PCA",
        "sPCA-MapReduce",
        "Mahout-PCA",
    ]);

    for case in &cases {
        eprintln!("running {} {} …", case.dataset, case.label);
        let d = D_COMPONENTS.min(case.y.rows().min(case.y.cols()) / 2).max(4);
        let ideal = ideal_error(&case.y, d, 7);
        let target = target_error(ideal, 95.0);

        // sPCA on Spark.
        let spark_cfg = SpcaConfig::new(d)
            .with_max_iters(10)
            .with_rel_tolerance(None)
            .with_target_error(target)
            .with_partitions(8)
            .with_seed(7);
        let cluster = fresh_cluster();
        let spark_secs = Spca::new(spark_cfg.clone())
            .fit_spark(&cluster, &case.y)
            .map(|r| time_to(&r, target))
            .unwrap_or_else(|_| "Fail".into());

        // MLlib on Spark (single deterministic run; may OOM the driver).
        let cluster = fresh_cluster();
        let mllib_secs = MllibPca::new(MllibConfig::new(d).with_partitions(8))
            .fit(&cluster, &case.y)
            .map(|r| fmt_secs(r.virtual_time_secs))
            .unwrap_or_else(|_| "Fail".into());

        // sPCA on MapReduce.
        let cluster = fresh_cluster();
        let mr_secs = Spca::new(spark_cfg)
            .fit_mapreduce(&cluster, &case.y)
            .map(|r| time_to(&r, target))
            .unwrap_or_else(|_| "Fail".into());

        // Mahout-PCA on MapReduce (power iterations until the target).
        let cluster = fresh_cluster();
        let mahout_secs = MahoutPca::new(
            MahoutConfig::new(d)
                .with_max_iters(3)
                .with_target_error(target)
                .with_partitions(8)
                .with_seed(7),
        )
        .fit(&cluster, &case.y)
        .map(|r| time_to(&r, target))
        .unwrap_or_else(|_| "Fail".into());

        table.row(&[
            case.dataset.to_string(),
            case.label.clone(),
            spark_secs,
            mllib_secs,
            mr_secs,
            mahout_secs,
        ]);
    }
    table.print();
}

/// Virtual time at which the run reached the target error, or a
/// lower-bound marker when the iteration cap hit first.
fn time_to(run: &spca_core::SpcaRun, target: f64) -> String {
    match run.time_to_error(target) {
        Some(secs) => fmt_secs(secs),
        None => format!(">{}", fmt_secs(run.virtual_time_secs)),
    }
}

fn build_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for (cols, label) in [(2_000, "200K x 2K"), (6_000, "200K x 6K"), (16_000, "200K x 16K")] {
        cases.push(Case {
            dataset: "Tweets",
            label: label.into(),
            y: data::tweets(200_000, cols, 1),
        });
    }
    for (cols, label) in [(2_000, "50K x 2K"), (10_000, "50K x 10K"), (14_000, "50K x 14K")] {
        cases.push(Case {
            dataset: "Bio-Text",
            label: label.into(),
            y: data::biotext(50_000, cols, 2),
        });
    }
    for (cols, label) in [(1_000, "353 x 1K"), (4_000, "353 x 4K"), (10_000, "353 x 10K")] {
        cases.push(Case {
            dataset: "Diabetes",
            label: label.into(),
            y: data::diabetes(353, cols, 3),
        });
    }
    cases.push(Case {
        dataset: "Images",
        label: "50K x 128".into(),
        y: data::images(50_000, 128, 4),
    });
    cases
}
