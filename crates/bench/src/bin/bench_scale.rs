//! Event-engine scale benchmark: raw queue throughput, shared-bandwidth
//! flow-storm throughput, and end-to-end fit arms at 8 / 100 / 1000
//! virtual nodes under both timing models.
//!
//! Three sections, all seeded and deterministic in everything but the
//! host wall-clock:
//!
//! * `queue_storm` — a push/pop/cancel storm through the raw
//!   [`EventQueue`]: the engine's core data structure must sustain at
//!   least 1M processed events per host second (asserted in release
//!   builds; tombstone pops count — they cost a heap operation).
//! * `sim_storm`  — a 1000-virtual-node shared-bandwidth simulation:
//!   waves of per-downlink flows with deliberate skew and two
//!   mid-transfer cancellations. Reports the full-stack events/sec
//!   (each event here re-solves max-min rates over ~1000 touched
//!   links) plus the contention invariant: peak utilization ≤ 100 %
//!   on every one of the 3001 links.
//! * `fit_arms`   — sPCA-on-Spark fits at 8 / 100 / 1000 virtual nodes
//!   (partitions = 2·nodes + 1, so partition-to-node skew is
//!   systematic) under `Uncontended` and `Contended` timing. The model
//!   must be bit-identical across timing models; the contended network
//!   time must stretch measurably versus the arithmetic model (the
//!   skewed downlinks are the bottleneck the old model could not see).
//!
//! Usage:
//!   bench_scale                  # full shape, writes BENCH_scale.json
//!   bench_scale --smoke          # small shape, quick CI sanity run
//!   bench_scale --out FILE.json  # override the output path

use std::time::Instant;

use dcluster::netsim::{simulate, FlowSpec};
use dcluster::{CancelSpec, ClusterConfig, EventQueue, SimCluster, TimingModel, Topology};
use linalg::{Prng, SparseMat};
use spca_core::{Spca, SpcaConfig, SpcaRun};

/// The asserted engine throughput floor, in processed events per host
/// second (release builds only — debug heaps are an order slower).
const FLOOR_EVENTS_PER_SEC: f64 = 1_000_000.0;

fn random_sparse(rng: &mut Prng, rows: usize, cols: usize, density: f64) -> SparseMat {
    let target = ((rows * cols) as f64 * density) as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        triplets.push((rng.index(rows), rng.index(cols) as u32, rng.normal()));
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

fn model_bits(run: &SpcaRun) -> (Vec<u64>, Vec<u64>, u64) {
    (
        run.model.components().data().iter().map(|v| v.to_bits()).collect(),
        run.model.mean().iter().map(|v| v.to_bits()).collect(),
        run.model.noise_variance().to_bits(),
    )
}

struct StormResult {
    events: u64,
    cancelled: u64,
    host_secs: f64,
}

/// Raw event-queue storm: batches of timestamp-jittered pushes, a cancel
/// wave every other batch, half-drains in between, full drain at the end.
/// Every push is eventually popped (live or as a tombstone), so
/// `processed()` equals the push count and the workload is deterministic.
fn queue_storm(total: usize) -> StormResult {
    let mut q: EventQueue<u64> = EventQueue::with_capacity(1 << 20);
    let mut rng = Prng::seed_from_u64(0x5ca1e);
    let batch = 1024usize;
    let batches = total / batch;
    let mut cancel_pool: Vec<u64> = Vec::with_capacity(batch);
    let mut cancelled = 0u64;
    let start = Instant::now();
    for b in 0..batches {
        let base = (b as u64) * 1_000;
        for i in 0..batch {
            let seq = q.push(base + rng.index(997) as u64, (b * batch + i) as u64);
            if i % 16 == 0 {
                cancel_pool.push(seq);
            }
        }
        if b % 2 == 1 {
            cancelled += cancel_pool.len() as u64;
            for seq in cancel_pool.drain(..) {
                q.cancel(seq);
            }
        }
        // Half-drain: pops stay behind the next batch's minimum time, so
        // virtual time is monotone while the heap stays ~half full.
        for _ in 0..batch / 2 {
            if q.pop().is_none() {
                break;
            }
        }
    }
    while q.pop().is_some() {}
    let host_secs = start.elapsed().as_secs_f64();
    StormResult { events: q.processed(), cancelled, host_secs }
}

struct SimStormResult {
    virtual_nodes: usize,
    flows: usize,
    events: u64,
    resolves: u64,
    peak_flows: usize,
    makespan_secs: f64,
    host_secs: f64,
}

/// 1000-virtual-node flow storm through the full shared-bandwidth stack:
/// `waves` rounds of one flow per downlink, every third wave doubling up
/// on 100 downlinks (contention), plus two mid-transfer cancellations.
fn sim_storm(waves: usize) -> SimStormResult {
    let nodes = 1_000usize;
    let cfg = ClusterConfig::scaled_cluster();
    let topo = Topology::new(nodes, cfg.network_bytes_per_sec, cfg.disk_bytes_per_sec);
    let mut flows = Vec::new();
    for w in 0..waves {
        let start = w as f64 * 3.0;
        for n in 0..nodes {
            let bytes = 1_000_000 + 1_733 * ((n * 7 + w * 13) % 97) as u64;
            flows.push(FlowSpec::new(bytes, [topo.downlink(n), topo.fabric()]).at(start));
        }
        if w % 3 == 0 {
            for k in 0..100 {
                flows.push(
                    FlowSpec::new(2_500_000, [topo.downlink(k * 9 % nodes), topo.fabric()])
                        .at(start),
                );
            }
        }
    }
    let cancels = vec![
        CancelSpec { flow: 7, at_secs: 0.4, requeue_delay_secs: 0.5 },
        CancelSpec { flow: nodes + 3, at_secs: 3.2, requeue_delay_secs: 1.0 },
    ];
    let start = Instant::now();
    let out = simulate(&topo, &flows, &cancels, 1 << 16);
    let host_secs = start.elapsed().as_secs_f64();
    for (l, &util) in out.link_peak_util.iter().enumerate() {
        assert!(util <= 1.0 + 1e-9, "link {l} over capacity at {util}");
    }
    SimStormResult {
        virtual_nodes: nodes,
        flows: flows.len(),
        events: out.events,
        resolves: out.resolves,
        peak_flows: out.peak_flows,
        makespan_secs: out.makespan_secs,
        host_secs,
    }
}

struct FitArm {
    nodes: usize,
    partitions: usize,
    timing: TimingModel,
    virtual_secs: f64,
    network_us: u64,
    disk_us: u64,
    engine_events: u64,
    engine_resolves: u64,
    host_secs: f64,
    bits: (Vec<u64>, Vec<u64>, u64),
}

fn fit_arm(y: &SparseMat, config: &SpcaConfig, nodes: usize, timing: TimingModel) -> FitArm {
    let partitions = 2 * nodes + 1;
    let cluster =
        SimCluster::new(ClusterConfig::scaled_cluster().with_nodes(nodes).with_timing(timing));
    let start = Instant::now();
    let run = Spca::new(config.clone().with_partitions(partitions))
        .fit_spark(&cluster, y)
        .expect("fit must succeed");
    let host_secs = start.elapsed().as_secs_f64();
    let cats = cluster.category_time_us();
    let engine = cluster.engine_stats().unwrap_or_default();
    if timing == TimingModel::Contended {
        for l in cluster.link_stats() {
            assert!(l.peak_util <= 1.0 + 1e-9, "{nodes} nodes: link {} at {}", l.label, l.peak_util);
        }
    }
    FitArm {
        nodes,
        partitions,
        timing,
        virtual_secs: run.virtual_time_secs,
        network_us: cats[2],
        disk_us: cats[3],
        engine_events: engine.events,
        engine_resolves: engine.resolves,
        host_secs,
        bits: model_bits(&run),
    }
}

fn arm_json(a: &FitArm) -> String {
    format!(
        "    {{\n      \"virtual_nodes\": {},\n      \"partitions\": {},\n      \"timing\": \"{}\",\n      \"virtual_time_secs\": {:.4},\n      \"network_us\": {},\n      \"disk_us\": {},\n      \"engine_events\": {},\n      \"engine_resolves\": {},\n      \"host\": {{\"secs\": {:.4}}}\n    }}",
        a.nodes,
        a.partitions,
        a.timing.label(),
        a.virtual_secs,
        a.network_us,
        a.disk_us,
        a.engine_events,
        a.engine_resolves,
        a.host_secs,
    )
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_scale",
        "Event-engine scale benchmark: queue throughput, 1000-node flow storm, fit arms",
        &[
            ("--smoke", "Small shape (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_scale.json)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    // -- queue storm ------------------------------------------------------
    let storm_events = if smoke { 1 << 20 } else { 1 << 22 };
    let qs = queue_storm(storm_events);
    let qs_rate = qs.events as f64 / qs.host_secs.max(1e-12);
    println!(
        "queue_storm: {} events ({} cancelled) in {:.3}s host = {:.2}M events/sec",
        qs.events,
        qs.cancelled,
        qs.host_secs,
        qs_rate / 1e6
    );
    // Debug heaps are ~10x slower; the throughput bar is a release claim.
    #[cfg(not(debug_assertions))]
    assert!(
        qs_rate >= FLOOR_EVENTS_PER_SEC,
        "event queue sustained only {qs_rate:.0} events/sec (floor {FLOOR_EVENTS_PER_SEC})"
    );

    // -- 1000-node flow storm --------------------------------------------
    let ss = sim_storm(if smoke { 6 } else { 24 });
    let ss_rate = ss.events as f64 / ss.host_secs.max(1e-12);
    println!(
        "sim_storm: {} nodes, {} flows, {} events / {} resolves (peak {} concurrent) \
         in {:.3}s host = {:.0}k events/sec, makespan {:.2} virtual s",
        ss.virtual_nodes,
        ss.flows,
        ss.events,
        ss.resolves,
        ss.peak_flows,
        ss.host_secs,
        ss_rate / 1e3,
        ss.makespan_secs,
    );

    // -- fit arms ---------------------------------------------------------
    let (rows, cols, density, d, iters) =
        if smoke { (3_000, 200, 1e-2, 4, 2) } else { (8_000, 1_000, 2e-3, 8, 3) };
    let mut rng = Prng::seed_from_u64(2015);
    let y = random_sparse(&mut rng, rows, cols, density);
    let config = SpcaConfig::new(d).with_max_iters(iters).with_rel_tolerance(None).with_seed(7);
    println!("Y: {rows}x{cols} ({} nnz), d={d}, {iters} iterations, Spark engine", y.nnz());

    let mut arms: Vec<FitArm> = Vec::new();
    let mut stretches: Vec<(usize, f64)> = Vec::new();
    for &nodes in &[8usize, 100, 1000] {
        let u = fit_arm(&y, &config, nodes, TimingModel::Uncontended);
        let c = fit_arm(&y, &config, nodes, TimingModel::Contended);
        assert_eq!(u.bits, c.bits, "{nodes} nodes: timing model changed the model");
        let stretch = c.network_us as f64 / (u.network_us as f64).max(1.0);
        println!(
            "{nodes:>5} nodes: uncontended {:>9.2}s / contended {:>9.2}s virtual; \
             shuffle stretch {:.3}x ({} engine events, {} resolves)",
            u.virtual_secs, c.virtual_secs, stretch, c.engine_events, c.engine_resolves,
        );
        assert!(
            stretch > 1.001,
            "{nodes} nodes: contended shuffles must stretch past the arithmetic \
             model (got {stretch})"
        );
        stretches.push((nodes, stretch));
        arms.push(u);
        arms.push(c);
    }

    // -- JSON -------------------------------------------------------------
    let arm_body: Vec<String> = arms.iter().map(arm_json).collect();
    let stretch_body: Vec<String> = stretches
        .iter()
        .map(|(n, s)| format!("    \"nodes_{n}\": {s:.4}"))
        .collect();
    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"queue_storm\": {{\n    \"events\": {},\n    \"cancelled\": {},\n    \"host\": {{\"secs\": {:.4}}},\n    \"events_per_sec\": {:.0},\n    \"floor_events_per_sec\": {:.0}\n  }},\n  \"sim_storm\": {{\n    \"virtual_nodes\": {},\n    \"flows\": {},\n    \"events\": {},\n    \"resolves\": {},\n    \"peak_flows\": {},\n    \"makespan_virtual_secs\": {:.4},\n    \"host\": {{\"secs\": {:.4}}},\n    \"events_per_sec\": {:.0}\n  }},\n  \"shape\": {{\"rows\": {rows}, \"cols\": {cols}, \"density\": {density}, \"nnz\": {}, \"d\": {d}, \"iters\": {iters}}},\n  \"fit_arms\": [\n{}\n  ],\n  \"virtual_shuffle_stretch\": {{\n{}\n  }},\n  \"model_bitwise_equal_across_timing\": true\n}}\n",
        if smoke { "smoke" } else { "full" },
        qs.events,
        qs.cancelled,
        qs.host_secs,
        qs_rate,
        FLOOR_EVENTS_PER_SEC,
        ss.virtual_nodes,
        ss.flows,
        ss.events,
        ss.resolves,
        ss.peak_flows,
        ss.makespan_secs,
        ss.host_secs,
        ss_rate,
        y.nnz(),
        arm_body.join(",\n"),
        stretch_body.join(",\n"),
    );
    obs::json::validate(&json).expect("benchmark JSON must be valid");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
