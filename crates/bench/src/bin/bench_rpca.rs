//! Three-way time-to-accuracy comparison: PPCA-EM vs Mahout-SSVD vs the
//! randomized subspace-iteration arm, on the paper's dataset shapes.
//!
//! The question this benchmark answers is the communication-pattern
//! tradeoff documented in DESIGN.md §15: EM runs *many thin iterations*
//! (each shuffling d-width partials), the randomized family runs *a few
//! fat passes* (each shuffling K = d + p width partials). Per arm it
//! records virtual time, shuffle (network) bytes, intermediate bytes,
//! the sampled final error as a percent of the ideal accuracy, and the
//! derived figure of merit: **shuffle bytes per accuracy point**. The
//! full run asserts the randomized arm moves fewer shuffle bytes per
//! unit accuracy than EM on at least one shape.
//!
//! All quantities are simulator outputs (virtual clock + byte meters),
//! so every metric is deterministic: the perf gate holds byte counts,
//! hashes and accuracies exact and bands only the `*_secs` keys. A
//! side-check re-runs the randomized arm on 1- and 2-worker host pools
//! and requires an identical model hash (the conformance-suite invariant,
//! re-verified at benchmark shapes).
//!
//! Usage:
//!   bench_rpca                  # full shapes, writes BENCH_rpca.json
//!   bench_rpca --smoke          # small shapes, quick CI sanity run
//!   bench_rpca --out FILE.json  # override the output path

use std::sync::Arc;

use baselines::{MahoutConfig, MahoutPca};
use dcluster::{ClusterConfig, SimCluster};
use linalg::{SparseMat, WorkerPool};
use spca_bench::{data, fresh_cluster, ideal_error, Table};
use spca_core::{accuracy, Algorithm, Spca, SpcaConfig, SpcaRun};

/// One arm's measured outputs (all virtual/deterministic).
struct ArmResult {
    run: SpcaRun,
    network_bytes: u64,
    accuracy_pct: f64,
    to_90pct_secs: Option<f64>,
}

fn measure(run: SpcaRun, cluster: &SimCluster, ideal: f64) -> ArmResult {
    let target = spca_bench::target_error(ideal, 90.0);
    ArmResult {
        accuracy_pct: accuracy::percent_of_ideal(run.final_error(), ideal),
        to_90pct_secs: run.time_to_error(target),
        network_bytes: cluster.metrics().network_bytes,
        run,
    }
}

fn em_arm(y: &SparseMat, d: usize, iters: usize, ideal: f64) -> ArmResult {
    let cluster = fresh_cluster();
    let run = Spca::new(
        SpcaConfig::new(d)
            .with_max_iters(iters)
            .with_rel_tolerance(None)
            .with_partitions(8)
            .with_seed(7),
    )
    .fit_spark(&cluster, y)
    .expect("PPCA-EM arm");
    measure(run, &cluster, ideal)
}

fn mahout_arm(y: &SparseMat, d: usize, iters: usize, ideal: f64) -> ArmResult {
    let cluster = fresh_cluster();
    let run = MahoutPca::new(
        MahoutConfig::new(d).with_max_iters(iters).with_partitions(8).with_seed(7),
    )
    .fit(&cluster, y)
    .expect("Mahout-SSVD arm");
    measure(run, &cluster, ideal)
}

fn rpca_config(d: usize, power_iters: usize) -> SpcaConfig {
    SpcaConfig::new(d)
        .with_algorithm(Algorithm::Randomized)
        .with_rpca_oversample(10)
        .with_rpca_power_iters(power_iters)
        .with_rel_tolerance(None)
        .with_partitions(8)
        .with_seed(7)
}

fn randomized_arm(y: &SparseMat, d: usize, power_iters: usize, ideal: f64) -> ArmResult {
    let cluster = fresh_cluster();
    let run =
        Spca::new(rpca_config(d, power_iters)).fit_spark(&cluster, y).expect("randomized arm");
    measure(run, &cluster, ideal)
}

fn arm_json(a: &ArmResult) -> String {
    // Bytes-per-accuracy-point: the benchmark's figure of merit. Guard
    // against a degenerate zero-accuracy arm rather than emitting inf.
    let per_acc = a.network_bytes as f64 / a.accuracy_pct.max(1e-9);
    format!(
        "{{\"virtual_secs\": {:.6e}, \"to_90pct_secs\": {:.6e}, \"network_bytes\": {}, \
         \"intermediate_bytes\": {}, \"final_error\": {:.12e}, \"accuracy_pct\": {:.6}, \
         \"net_bytes_per_accuracy_pct\": {:.6e}, \"iterations\": {}, \"model_hash\": \"{:016x}\"}}",
        a.run.virtual_time_secs,
        a.to_90pct_secs.unwrap_or(-1.0),
        a.network_bytes,
        a.run.intermediate_bytes,
        a.run.final_error(),
        a.accuracy_pct,
        per_acc,
        a.run.iterations.len(),
        a.run.model.content_hash(),
    )
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_rpca",
        "Three-way time-to-accuracy: PPCA-EM vs Mahout-SSVD vs randomized subspace iteration",
        &[
            ("--smoke", "Small shapes (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_rpca.json)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_rpca.json".to_string());

    // Shapes: a tweets-like tall sparse matrix and a diabetes-like dense
    // short one — the two communication regimes (D large vs D small).
    let shapes: Vec<(&str, SparseMat, usize, usize, usize)> = if smoke {
        vec![
            ("tweets", data::tweets(1_500, 400, 2), 10, 5, 2),
            ("diabetes", data::diabetes(800, 150, 3), 8, 5, 2),
        ]
    } else {
        vec![
            ("tweets", data::tweets(40_000, 8_000, 2), 50, 8, 2),
            ("diabetes", data::diabetes(12_000, 1_000, 3), 50, 8, 2),
        ]
    };
    let mahout_iters = if smoke { 2 } else { 3 };

    let mut shape_jsons = Vec::new();
    let mut randomized_wins = false;
    for (name, y, d, em_iters, power_iters) in &shapes {
        let (name, d, em_iters, power_iters) = (*name, *d, *em_iters, *power_iters);
        eprintln!("{name}: {}x{} ({} nnz), d={d} — ideal reference run…", y.rows(), y.cols(), y.nnz());
        let ideal = ideal_error(y, d, 7);

        let em = em_arm(y, d, em_iters, ideal);
        let mahout = mahout_arm(y, d, mahout_iters, ideal);
        let rand = randomized_arm(y, d, power_iters, ideal);

        let mut table = Table::new(&[
            "Arm", "Iters", "Time (s)", "Shuffle", "Acc (%)", "Shuffle/Acc",
        ]);
        for (label, a) in [("PPCA-EM", &em), ("Mahout-SSVD", &mahout), ("Randomized", &rand)] {
            table.row(&[
                label.into(),
                a.run.iterations.len().to_string(),
                spca_bench::fmt_secs(a.run.virtual_time_secs),
                spca_bench::fmt_bytes(a.network_bytes),
                format!("{:.1}", a.accuracy_pct),
                spca_bench::fmt_bytes((a.network_bytes as f64 / a.accuracy_pct.max(1e-9)) as u64),
            ]);
        }
        println!("\n=== {name}: {}x{}, d={d} (ideal error {ideal:.4}) ===", y.rows(), y.cols());
        table.print();

        let em_per_acc = em.network_bytes as f64 / em.accuracy_pct.max(1e-9);
        let rand_per_acc = rand.network_bytes as f64 / rand.accuracy_pct.max(1e-9);
        if rand_per_acc < em_per_acc {
            randomized_wins = true;
        }
        shape_jsons.push(format!(
            "    {{\"name\": \"{name}\", \"rows\": {}, \"cols\": {}, \"nnz\": {}, \"d\": {d}, \
             \"ideal_error\": {ideal:.12e},\n     \"ppca_em\": {},\n     \"mahout_ssvd\": {},\n     \
             \"randomized\": {},\n     \"randomized_beats_em_on_shuffle_per_accuracy\": {}}}",
            y.rows(),
            y.cols(),
            y.nnz(),
            arm_json(&em),
            arm_json(&mahout),
            arm_json(&rand),
            rand_per_acc < em_per_acc,
        ));
    }

    // Worker-count determinism at a benchmark shape: the conformance
    // suite's invariant, re-checked here so the committed baseline also
    // certifies it (the hash below is Exact-gated).
    let dy = data::tweets(800, 200, 5);
    let det_hashes: Vec<u64> = [1usize, 2]
        .iter()
        .map(|&w| {
            let cl = SimCluster::new_with_pool(
                ClusterConfig::scaled_cluster(),
                Arc::new(WorkerPool::new(w)),
            );
            Spca::new(rpca_config(8, 2)).fit_spark(&cl, &dy).expect("determinism run").model.content_hash()
        })
        .collect();
    let deterministic = det_hashes[0] == det_hashes[1];
    assert!(deterministic, "randomized arm is not worker-count deterministic");
    println!("\nworker-count deterministic: {deterministic} (hash {:016x})", det_hashes[0]);

    if !smoke {
        // The acceptance bar: fewer shuffle bytes per accuracy point than
        // EM on at least one paper shape.
        assert!(
            randomized_wins,
            "randomized arm never beat EM on shuffle bytes per unit accuracy"
        );
    }

    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"shapes\": [\n{}\n  ],\n  \
         \"randomized_wins_shuffle_per_accuracy\": {randomized_wins},\n  \
         \"worker_count_deterministic\": {deterministic},\n  \
         \"determinism_model_hash\": \"{:016x}\"\n}}\n",
        if smoke { "smoke" } else { "full" },
        shape_jsons.join(",\n"),
        det_hashes[0],
    );
    obs::json::validate(&json).expect("benchmark JSON must be valid");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
