//! Figure 4 — accuracy vs time on the Bio-Text dataset,
//! sPCA-MapReduce vs Mahout-PCA.
//!
//! The paper's shape: sPCA crosses 90% of ideal accuracy within its first
//! couple of iterations and converges quickly; Mahout-PCA needs several
//! times longer to approach the same accuracy.

use baselines::{MahoutConfig, MahoutPca};
use spca_bench::{data, fresh_cluster, ideal_error, Table, D_COMPONENTS};
use spca_core::{accuracy, Spca, SpcaConfig};

fn main() {
    let _trace = spca_bench::cli::trace_args("fig4_accuracy_biotext", "Figure 4: accuracy vs time on Bio-Text, sPCA-MapReduce vs Mahout-PCA", &[]);
    println!("=== Figure 4: accuracy (% of ideal) vs time, Bio-Text ===\n");
    let y = data::biotext(40_000, 8_000, 2);
    let d = D_COMPONENTS;
    eprintln!("reference run for ideal accuracy…");
    let ideal = ideal_error(&y, d, 7);
    println!("ideal error (25-iteration reference): {ideal:.4}\n");

    let cluster = fresh_cluster();
    let spca = Spca::new(
        SpcaConfig::new(d)
            .with_max_iters(8)
            .with_rel_tolerance(None)
            .with_partitions(8)
            .with_seed(7),
    )
    .fit_mapreduce(&cluster, &y)
    .expect("sPCA-MapReduce run");

    let cluster = fresh_cluster();
    let mahout = MahoutPca::new(
        MahoutConfig::new(d).with_max_iters(4).with_partitions(8).with_seed(7),
    )
    .fit(&cluster, &y)
    .expect("Mahout-PCA run");

    let mut table = Table::new(&["Series", "Iter", "Time (s)", "Accuracy (%)"]);
    for it in &spca.iterations {
        table.row(&[
            "sPCA-MapReduce".into(),
            it.iteration.to_string(),
            spca_bench::fmt_secs(it.virtual_time_secs),
            format!("{:.1}", accuracy::percent_of_ideal(it.error, ideal)),
        ]);
    }
    for it in &mahout.iterations {
        table.row(&[
            "Mahout-PCA".into(),
            it.iteration.to_string(),
            spca_bench::fmt_secs(it.virtual_time_secs),
            format!("{:.1}", accuracy::percent_of_ideal(it.error, ideal)),
        ]);
    }
    table.print();

    // ASCII rendering of the two curves.
    let to_series = |name: &str, run: &spca_core::SpcaRun| {
        spca_bench::plot::Series::new(
            name,
            run.iterations
                .iter()
                .map(|it| (it.virtual_time_secs, accuracy::percent_of_ideal(it.error, ideal)))
                .collect(),
        )
    };
    println!();
    println!(
        "{}",
        spca_bench::plot::render_xy(
            &[to_series("sPCA-MapReduce", &spca), to_series("Mahout-PCA", &mahout)],
            64,
            14,
            false,
        )
    );

    let spca_90 = spca
        .iterations
        .iter()
        .find(|it| accuracy::percent_of_ideal(it.error, ideal) >= 90.0)
        .map(|it| it.virtual_time_secs);
    let mahout_90 = mahout
        .iterations
        .iter()
        .find(|it| accuracy::percent_of_ideal(it.error, ideal) >= 90.0)
        .map(|it| it.virtual_time_secs);
    println!(
        "\ntime to 90% of ideal: sPCA-MapReduce {}, Mahout-PCA {}",
        spca_90.map_or("n/a".into(), spca_bench::fmt_secs),
        mahout_90.map_or("not reached".into(), spca_bench::fmt_secs),
    );
}
