//! Fault-domain benchmark: recovery overhead, speculation payoff, and
//! checkpoint/restart cost, on both engines.
//!
//! Four arms per engine, all fitting the same matrix with the same seed:
//!
//! * `baseline`      — fault-free run (the reference model + time).
//! * `faults_nospec` — generated node-crash plan (25% of nodes) plus
//!   stragglers, speculative execution OFF.
//! * `faults_spec`   — the same fault spec with speculation ON; simulated
//!   wall-clock must drop versus `faults_nospec`.
//! * `checkpoint`    — checkpointing every 2 iterations, driver killed
//!   mid-loop, run resumed from the DFS checkpoint.
//!
//! Every faulted arm must produce a model bit-identical to `baseline` —
//! the subsystem's core invariant — and the JSON records the recovery
//! counters (reattempts, recomputed partitions, re-replicated blocks,
//! speculation wins) plus the virtual-time overhead of each arm.
//!
//! Usage:
//!   bench_faults                  # full shape, writes BENCH_faults.json
//!   bench_faults --smoke          # small shape, quick CI sanity run
//!   bench_faults --out FILE.json  # override the output path

use dcluster::{ClusterConfig, FaultPlan, FaultSpec, SimCluster};
use linalg::{Prng, SparseMat};
use spca_core::{Spca, SpcaConfig, SpcaError, SpcaRun};

fn random_sparse(rng: &mut Prng, rows: usize, cols: usize, density: f64) -> SparseMat {
    let target = ((rows * cols) as f64 * density) as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        triplets.push((rng.index(rows), rng.index(cols) as u32, rng.normal()));
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

fn model_bits(run: &SpcaRun) -> (Vec<u64>, Vec<u64>, u64) {
    (
        run.model.components().data().iter().map(|v| v.to_bits()).collect(),
        run.model.mean().iter().map(|v| v.to_bits()).collect(),
        run.model.noise_variance().to_bits(),
    )
}

fn fit(engine: &str, cluster: &SimCluster, y: &SparseMat, config: &SpcaConfig) -> SpcaRun {
    let r = match engine {
        "spark" => Spca::new(config.clone()).fit_spark(cluster, y),
        _ => Spca::new(config.clone()).fit_mapreduce(cluster, y),
    };
    r.expect("fit must succeed")
}

/// The chaos applied to the faulted arms: a quarter of the nodes crash
/// inside the first EM iterations, a fifth of all tasks straggle at 6x.
fn fault_spec(speculation: bool) -> FaultSpec {
    FaultSpec::new(0xbe7c)
        .with_node_crash_rate(0.25)
        .with_crash_horizon_stages(8)
        .with_straggler_rate(0.2)
        .with_straggler_slowdown(6.0)
        .with_speculation(speculation)
}

struct FaultCounts {
    reattempts: u64,
    recomputed: u64,
    blocks_lost: u64,
    replication_bytes: u64,
    spec_wins: u64,
}

fn counts(cluster: &SimCluster) -> FaultCounts {
    let reg = cluster.registry();
    FaultCounts {
        reattempts: reg.counter("faults.task_reattempts").get(),
        recomputed: reg.counter("faults.partitions_recomputed").get(),
        blocks_lost: reg.counter("faults.blocks_lost").get(),
        replication_bytes: reg.counter("faults.replication_bytes").get(),
        spec_wins: reg.counter("faults.speculative_wins").get(),
    }
}

struct EngineResult {
    engine: String,
    t_base: f64,
    t_nospec: f64,
    t_spec: f64,
    t_checkpoint: f64,
    nospec: FaultCounts,
    spec: FaultCounts,
    checkpoint_writes: u64,
    checkpoint_restores: u64,
}

fn run_engine(engine: &str, y: &SparseMat, config: &SpcaConfig) -> EngineResult {
    let nodes = ClusterConfig::paper_cluster().nodes;

    // Arm 1: fault-free reference.
    let c = SimCluster::new(ClusterConfig::paper_cluster());
    let base = fit(engine, &c, y, config);
    let bits = model_bits(&base);

    // Arm 2: crashes + stragglers, no speculation.
    let c_nospec = SimCluster::new(ClusterConfig::paper_cluster());
    let spec = fault_spec(false);
    let plan = FaultPlan::generate(&spec, nodes);
    assert!(!plan.events().is_empty(), "the generated plan must crash something");
    c_nospec.install_fault_plan(spec, plan.clone()).unwrap();
    let nospec = fit(engine, &c_nospec, y, config);
    assert_eq!(bits, model_bits(&nospec), "{engine}: faulted model diverged from baseline");

    // Arm 3: identical chaos with speculative backups.
    let c_spec = SimCluster::new(ClusterConfig::paper_cluster());
    c_spec.install_fault_plan(fault_spec(true), plan).unwrap();
    let spec_run = fit(engine, &c_spec, y, config);
    assert_eq!(bits, model_bits(&spec_run), "{engine}: speculation changed the model");
    assert!(
        spec_run.virtual_time_secs < nospec.virtual_time_secs,
        "{engine}: speculation must cut simulated wall-clock ({:.1}s vs {:.1}s)",
        spec_run.virtual_time_secs,
        nospec.virtual_time_secs
    );

    // Arm 4: checkpoint every 2 iterations, kill the driver mid-loop,
    // resume. Cost = crashed attempt + resumed run, both on one cluster.
    let c_ckpt = SimCluster::new(ClusterConfig::paper_cluster());
    let ckpt_config = config.clone().with_checkpoint_every(2);
    let crash_at = (config.max_iters / 2).max(1);
    let before = c_ckpt.metrics().virtual_time_secs;
    let crashing = ckpt_config.clone().with_crash_at_iteration(crash_at);
    let crashed = match engine {
        "spark" => Spca::new(crashing).fit_spark(&c_ckpt, y),
        _ => Spca::new(crashing).fit_mapreduce(&c_ckpt, y),
    };
    assert!(
        matches!(crashed, Err(SpcaError::DriverCrashed { .. })),
        "{engine}: the injected driver crash must surface"
    );
    let resumed = fit(engine, &c_ckpt, y, &ckpt_config);
    assert_eq!(bits, model_bits(&resumed), "{engine}: resumed model diverged from baseline");
    let t_checkpoint = c_ckpt.metrics().virtual_time_secs - before;
    let reg = c_ckpt.registry();
    assert!(reg.counter("faults.checkpoint_restores").get() > 0, "{engine}: no restore happened");

    EngineResult {
        engine: engine.to_string(),
        t_base: base.virtual_time_secs,
        t_nospec: nospec.virtual_time_secs,
        t_spec: spec_run.virtual_time_secs,
        t_checkpoint,
        nospec: counts(&c_nospec),
        spec: counts(&c_spec),
        checkpoint_writes: reg.counter("faults.checkpoint_writes").get(),
        checkpoint_restores: reg.counter("faults.checkpoint_restores").get(),
    }
}

fn engine_json(r: &EngineResult) -> String {
    let overhead = r.t_nospec / r.t_base.max(1e-12);
    let spec_saving = 1.0 - r.t_spec / r.t_nospec.max(1e-12);
    format!(
        "    {{\n      \"engine\": \"{}\",\n      \"baseline_secs\": {:.3},\n      \"faults_nospec_secs\": {:.3},\n      \"faults_spec_secs\": {:.3},\n      \"checkpoint_crash_resume_secs\": {:.3},\n      \"recovery_overhead\": {:.4},\n      \"speculation_saving\": {:.4},\n      \"task_reattempts\": {},\n      \"partitions_recomputed\": {},\n      \"blocks_lost\": {},\n      \"replication_bytes\": {},\n      \"speculative_wins\": {},\n      \"checkpoint_writes\": {},\n      \"checkpoint_restores\": {},\n      \"model_bitwise_equal\": true\n    }}",
        r.engine,
        r.t_base,
        r.t_nospec,
        r.t_spec,
        r.t_checkpoint,
        overhead,
        spec_saving,
        r.nospec.reattempts,
        r.nospec.recomputed,
        r.nospec.blocks_lost,
        r.nospec.replication_bytes,
        r.spec.spec_wins,
        r.checkpoint_writes,
        r.checkpoint_restores,
    )
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_faults",
        "Fault-domain benchmark: recovery overhead, speculation payoff, checkpoint/restart",
        &[
            ("--smoke", "Small shape (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_faults.json)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_faults.json".to_string());

    let (n, d_in, density, d, iters) =
        if smoke { (600, 150, 2e-2, 4, 4) } else { (20_000, 2_000, 2e-3, 16, 6) };
    let mut rng = Prng::seed_from_u64(2015);
    let y = random_sparse(&mut rng, n, d_in, density);
    let config = SpcaConfig::new(d).with_max_iters(iters).with_rel_tolerance(None);

    println!(
        "Y: {n}x{d_in} ({} nnz), d={d}, {iters} iterations, 8-node paper cluster",
        y.nnz()
    );

    let mut engines = Vec::new();
    for engine in ["spark", "mapreduce"] {
        let r = run_engine(engine, &y, &config);
        println!(
            "{:<9}  base {:>8.1}s  faults {:>8.1}s  +spec {:>8.1}s  ckpt {:>8.1}s  \
             reattempts {}  recomputed {}  spec-wins {}",
            r.engine,
            r.t_base,
            r.t_nospec,
            r.t_spec,
            r.t_checkpoint,
            r.nospec.reattempts,
            r.nospec.recomputed,
            r.spec.spec_wins,
        );
        engines.push(r);
    }

    let body: Vec<String> = engines.iter().map(engine_json).collect();
    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"shape\": {{\"rows\": {n}, \"cols\": {d_in}, \"density\": {density}, \"nnz\": {}, \"d\": {d}, \"iters\": {iters}}},\n  \"engines\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        y.nnz(),
        body.join(",\n"),
    );
    obs::json::validate(&json).expect("benchmark JSON must be valid");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
