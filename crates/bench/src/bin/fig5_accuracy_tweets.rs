//! Figure 5 — accuracy vs time on the Tweets dataset:
//! sPCA-SG (smart guess), sPCA-MapReduce, Mahout-PCA.
//!
//! Shapes from the paper: sPCA dominates Mahout throughout; the
//! smart-guess variant pays a warm-up delay and then starts from a much
//! higher accuracy than cold-started sPCA. (Mahout cannot use smart
//! guesses at all — its random initialization is N×k.)

use baselines::{MahoutConfig, MahoutPca};
use spca_bench::{data, fresh_cluster, ideal_error, Table, D_COMPONENTS};
use spca_core::config::SmartGuess;
use spca_core::{accuracy, Spca, SpcaConfig};

fn main() {
    let _trace = spca_bench::cli::trace_args("fig5_accuracy_tweets", "Figure 5: accuracy vs time on Tweets, sPCA-Spark vs MLlib-PCA", &[]);
    println!("=== Figure 5: accuracy (% of ideal) vs time, Tweets ===\n");
    let y = data::tweets(150_000, 8_000, 1);
    let d = D_COMPONENTS;
    eprintln!("reference run for ideal accuracy…");
    let ideal = ideal_error(&y, d, 7);
    println!("ideal error (25-iteration reference): {ideal:.4}\n");

    let base = SpcaConfig::new(d)
        .with_max_iters(8)
        .with_rel_tolerance(None)
        .with_partitions(8)
        .with_seed(7);

    let cluster = fresh_cluster();
    let spca = Spca::new(base.clone()).fit_mapreduce(&cluster, &y).expect("sPCA-MapReduce");

    let cluster = fresh_cluster();
    let spca_sg = Spca::new(
        base.clone()
            .with_smart_guess(SmartGuess { sample_fraction: 0.05, iterations: 5 }),
    )
    .fit_mapreduce(&cluster, &y)
    .expect("sPCA-SG");

    let cluster = fresh_cluster();
    let mahout = MahoutPca::new(
        MahoutConfig::new(d).with_max_iters(4).with_partitions(8).with_seed(7),
    )
    .fit(&cluster, &y)
    .expect("Mahout-PCA");

    let mut table = Table::new(&["Series", "Iter", "Time (s)", "Accuracy (%)"]);
    let mut emit = |name: &str, run: &spca_core::SpcaRun| {
        for it in &run.iterations {
            table.row(&[
                name.into(),
                it.iteration.to_string(),
                spca_bench::fmt_secs(it.virtual_time_secs),
                format!("{:.1}", accuracy::percent_of_ideal(it.error, ideal)),
            ]);
        }
    };
    emit("sPCA-SG", &spca_sg);
    emit("sPCA-MapReduce", &spca);
    emit("Mahout-PCA", &mahout);
    table.print();

    let to_series = |name: &str, run: &spca_core::SpcaRun| {
        spca_bench::plot::Series::new(
            name,
            run.iterations
                .iter()
                .map(|it| (it.virtual_time_secs, accuracy::percent_of_ideal(it.error, ideal)))
                .collect(),
        )
    };
    println!();
    println!(
        "{}",
        spca_bench::plot::render_xy(
            &[
                to_series("sPCA-SG", &spca_sg),
                to_series("sPCA-MapReduce", &spca),
                to_series("Mahout-PCA", &mahout),
            ],
            64,
            14,
            true,
        )
    );

    println!(
        "\nfirst-iteration accuracy: sPCA-SG {:.1}% vs sPCA cold {:.1}% (warm-up cost {} s)",
        accuracy::percent_of_ideal(spca_sg.iterations[0].error, ideal),
        accuracy::percent_of_ideal(spca.iterations[0].error, ideal),
        spca_bench::fmt_secs(
            spca_sg.iterations[0].virtual_time_secs - spca.iterations[0].virtual_time_secs
        ),
    );
}
