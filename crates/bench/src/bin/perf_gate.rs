//! CI performance regression gate.
//!
//! Diffs freshly produced run ledgers / benchmark JSON against committed
//! baselines with per-metric tolerance rules (see `spca_bench::gate`):
//! bit-exact for hashes, byte counts and integrity counters; a relative
//! band for virtual-time metrics; host wall-clock noise ignored. Exits
//! non-zero and prints a delta table when anything regressed.
//!
//! Usage:
//!   perf_gate --baselines DIR --fresh DIR [--time-band FRACTION]
//!
//! Every `*.json` in the baselines directory must have a same-named
//! counterpart in the fresh directory; a missing counterpart is itself a
//! regression (a bench silently dropping its artifact is exactly what the
//! gate exists to catch).

use std::path::{Path, PathBuf};

use spca_bench::gate;

struct Args {
    baselines: PathBuf,
    fresh: PathBuf,
    time_band: f64,
}

fn usage() -> ! {
    eprintln!("Usage: perf_gate --baselines DIR --fresh DIR [--time-band FRACTION]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("CI performance regression gate: diff fresh run ledgers / bench JSON");
        println!("against committed baselines with per-metric tolerance rules.\n");
        println!("Usage: perf_gate --baselines DIR --fresh DIR [--time-band FRACTION]\n");
        println!("Options:");
        println!("  --baselines DIR    Directory of committed baseline *.json files");
        println!("  --fresh DIR        Directory of freshly produced artifacts");
        println!("  --time-band FRAC   Relative tolerance for virtual-time metrics");
        println!("                     (default 0.25; CI uses a wide band, fixtures 0.05)");
        std::process::exit(0);
    }
    let mut baselines = None;
    let mut fresh = None;
    let mut time_band = 0.25_f64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baselines" => baselines = it.next().map(PathBuf::from),
            "--fresh" => fresh = it.next().map(PathBuf::from),
            "--time-band" => {
                time_band = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v >= 0.0 => v,
                    _ => {
                        eprintln!("error: --time-band needs a non-negative number");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("error: unknown argument {other}");
                usage();
            }
        }
    }
    match (baselines, fresh) {
        (Some(baselines), Some(fresh)) => Args { baselines, fresh, time_band },
        _ => usage(),
    }
}

fn load(path: &Path) -> Result<obs::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    obs::json::parse(&text).map_err(|e| format!("parse {path:?}: {e}"))
}

fn main() {
    let args = parse_args();
    let mut names: Vec<String> = match std::fs::read_dir(&args.baselines) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("perf_gate: cannot read baselines dir {:?}: {e}", args.baselines);
            std::process::exit(2);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("perf_gate: no *.json baselines in {:?}", args.baselines);
        std::process::exit(2);
    }

    let mut failed = 0usize;
    for name in &names {
        let base_path = args.baselines.join(name);
        let fresh_path = args.fresh.join(name);
        let base = match load(&base_path) {
            Ok(doc) => doc,
            Err(e) => {
                println!("FAIL {name}: baseline unreadable: {e}");
                failed += 1;
                continue;
            }
        };
        if !fresh_path.exists() {
            println!(
                "FAIL {name}: no fresh artifact at {fresh_path:?} — did the bench forget \
                 to write its ledger?"
            );
            failed += 1;
            continue;
        }
        let fresh = match load(&fresh_path) {
            Ok(doc) => doc,
            Err(e) => {
                println!("FAIL {name}: fresh artifact unreadable: {e}");
                failed += 1;
                continue;
            }
        };
        let report = gate::compare(&base, &fresh, args.time_band);
        if report.passed() {
            println!(
                "PASS {name}: {} metrics compared, {} ignored, {} fresh-only",
                report.compared, report.ignored, report.fresh_only
            );
        } else {
            println!(
                "FAIL {name}: {} of {} metrics regressed (time band ±{:.0}%):",
                report.regressions.len(),
                report.compared,
                args.time_band * 100.0
            );
            for line in report.render().lines() {
                println!("  {line}");
            }
            failed += 1;
        }
    }
    if failed > 0 {
        println!("perf_gate: {failed} of {} artifacts FAILED", names.len());
        std::process::exit(1);
    }
    println!("perf_gate: all {} artifacts within tolerance", names.len());
}
