//! Validates Chrome-trace JSON files emitted by the bench binaries.
//!
//! Std-only (the workspace ships no JSON crate): each file must parse as
//! strict RFC 8259 JSON and contain a `traceEvents` key. CI runs this over
//! every `--trace` artifact before uploading it.
//!
//! Usage: trace_check FILE [FILE...]   # exit 0 iff every file is valid

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("Usage: trace_check FILE [FILE...]");
        eprintln!("Validates Chrome trace_event JSON files (strict RFC 8259 + traceEvents key).");
        std::process::exit(if files.is_empty() { 2 } else { 0 });
    }
    let mut failures = 0;
    for path in &files {
        let verdict = match std::fs::read_to_string(path) {
            Err(e) => Err(format!("unreadable: {e}")),
            Ok(text) => obs::json::validate(&text)
                .map_err(|e| format!("invalid JSON: {e}"))
                .and_then(|()| {
                    if text.contains("\"traceEvents\"") {
                        Ok(())
                    } else {
                        Err("missing \"traceEvents\" key".to_string())
                    }
                }),
        };
        match verdict {
            Ok(()) => println!("{path}: ok"),
            Err(msg) => {
                println!("{path}: FAIL ({msg})");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
