//! Validates Chrome-trace JSON files emitted by the bench binaries.
//!
//! Std-only (the workspace ships no JSON crate): each file must parse as
//! strict RFC 8259 JSON and contain a `traceEvents` key. Files listed
//! after `--plain` are validated as strict JSON only (benchmark result
//! files like `BENCH_em.json`, which are not Chrome traces). CI runs this
//! over every `--trace` and benchmark artifact before uploading it.
//!
//! Usage: trace_check FILE [FILE...] [--plain FILE...]   # exit 0 iff every file is valid

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("Usage: trace_check FILE [FILE...] [--plain FILE...]");
        eprintln!("Validates Chrome trace_event JSON files (strict RFC 8259 + traceEvents key).");
        eprintln!("Files after --plain are checked as strict JSON only (benchmark outputs).");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut failures = 0;
    let mut plain = false;
    for path in &args {
        if path == "--plain" {
            plain = true;
            continue;
        }
        let want_trace_events = !plain;
        let verdict = match std::fs::read_to_string(path) {
            Err(e) => Err(format!("unreadable: {e}")),
            Ok(text) => obs::json::validate(&text)
                .map_err(|e| format!("invalid JSON: {e}"))
                .and_then(|()| {
                    if !want_trace_events || text.contains("\"traceEvents\"") {
                        Ok(())
                    } else {
                        Err("missing \"traceEvents\" key".to_string())
                    }
                }),
        };
        match verdict {
            Ok(()) => println!("{path}: ok"),
            Err(msg) => {
                println!("{path}: FAIL ({msg})");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
