//! Table 3 — effect of the individual optimizations (Section 5.4).
//!
//! Each of sPCA's three core optimizations is exercised with and without,
//! on the same operation it accelerates, on a Tweets-like subset (the
//! paper used a 100K-row Tweets subset):
//!
//! 1. **Mean propagation** (line 7: computing X) — sparse `y·CM − Xm` vs
//!    materializing each dense centered row.
//! 2. **Minimizing intermediate data** (line 8: XtX/YtX) — recompute X on
//!    demand inside one consolidated job vs materialize X, ship it
//!    through the DFS, and read it back in each consuming job.
//! 3. **Frobenius norm** (line 13's ss1) — Algorithm 3 vs Algorithm 2.
//!
//! Expect order-of-magnitude gaps whose absolute size grows with scale
//! (the paper's 100K-row numbers: 2 s vs 5,400 s; 3 s vs 2,640 s; 0.4 s
//! vs 102 s).

use dcluster::StageOptions;
use linalg::bytes::ByteSized;
use linalg::wire::{Wire, WireError, WireReader};
use linalg::Mat;
use sparkle::SparkleContext;
use spca_bench::{data, fmt_bytes, fresh_cluster, Table, D_COMPONENTS};
use spca_core::spark::{to_rows, SpRow};
use spca_core::{frobenius, init, mean_prop};

/// Sub-second precision: the optimized arms finish in milliseconds.
fn fmt_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{secs:.3}")
    } else {
        spca_bench::fmt_secs(secs)
    }
}

struct Scalar(f64);

impl ByteSized for Scalar {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl Wire for Scalar {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn encoded_size(&self) -> u64 {
        8
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Scalar(f64::decode_from(r)?))
    }
}

struct SmallMat(Mat);

impl ByteSized for SmallMat {
    fn size_bytes(&self) -> u64 {
        ByteSized::size_bytes(&self.0)
    }
}

impl Wire for SmallMat {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn encoded_size(&self) -> u64 {
        self.0.encoded_size()
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SmallMat(Mat::decode_from(r)?))
    }
}

fn main() {
    let _trace = spca_bench::cli::trace_args("table3_optimizations", "Table 3: per-optimization ablation", &[]);
    println!("=== Table 3: per-optimization ablation (virtual seconds) ===\n");
    let rows = 100_000;
    let cols = 2_000;
    let d = D_COMPONENTS;
    let y = data::tweets(rows, cols, 1);
    let mean = y.col_means();
    let (c, ss) = init::random_init(cols, d, 7);
    let mut m = c.matmul_tn(&c);
    m.add_diag(ss);
    let m_inv = linalg::decomp::lu::Lu::new(&m).unwrap().inverse();
    let cm = c.matmul(&m_inv);
    let xm = cm.vecmat(&mean);

    let partitioned: Vec<Vec<SpRow>> = y.split_rows(16).iter().map(to_rows).collect();

    let mut table = Table::new(&["Optimization", "With (s)", "Without (s)", "Speedup"]);

    // ---- 1. Mean propagation (X computation). -----------------------------
    let with = {
        let cluster = fresh_cluster();
        let ctx = SparkleContext::new(&cluster);
        let rdd = ctx.from_partitions(partitioned.clone());
        let (_, _) = rdd.aggregate(
            "X/mean-prop",
            || Scalar(0.0),
            |acc, row: &SpRow| {
                let x = mean_prop::latent_row(row.view(), &cm, &xm);
                acc.0 += x.iter().sum::<f64>();
            },
            |acc, o| acc.0 += o.0,
        );
        cluster.metrics().virtual_time_secs
    };
    let without = {
        let cluster = fresh_cluster();
        let ctx = SparkleContext::new(&cluster);
        let rdd = ctx.from_partitions(partitioned.clone());
        let (_, _) = rdd.aggregate(
            "X/dense",
            || Scalar(0.0),
            |acc, row: &SpRow| {
                let x = mean_prop::latent_row_dense(row.view(), &mean, &cm);
                acc.0 += x.iter().sum::<f64>();
            },
            |acc, o| acc.0 += o.0,
        );
        cluster.metrics().virtual_time_secs
    };
    table.row(&[
        "Mean propagation".into(),
        fmt_secs(with),
        fmt_secs(without),
        format!("{:.0}x", without / with),
    ]);

    // ---- 2. Intermediate-data minimization (XtX from Y vs from stored X). --
    let (with, with_bytes) = {
        let cluster = fresh_cluster();
        let ctx = SparkleContext::new(&cluster);
        let rdd = ctx.from_partitions(partitioned.clone());
        // Consolidated: recompute X on demand, fold XtX locally.
        let (_, _) = rdd.aggregate(
            "XtX/on-demand",
            || SmallMat(Mat::zeros(d, d)),
            |acc, row: &SpRow| {
                let x = mean_prop::latent_row(row.view(), &cm, &xm);
                acc.0.add_outer(1.0, &x, &x);
            },
            |acc, o| acc.0.add_assign(&o.0),
        );
        let mx = cluster.metrics();
        (mx.virtual_time_secs, mx.intermediate_bytes)
    };
    let (without, without_bytes) = {
        let cluster = fresh_cluster();
        let ctx = SparkleContext::new(&cluster);
        let rdd = ctx.from_partitions(partitioned.clone());
        // Materialize X…
        let x_rdd = rdd.map_partitions("X/materialize", |part| {
            part.iter()
                .map(|row| mean_prop::latent_row(row.view(), &cm, &xm))
                .collect::<Vec<Vec<f64>>>()
        });
        // …ship it through the DFS (the unconsolidated pipeline exchanges
        // X between the X job and each of its three consumers)…
        let x_bytes = (rows * d * 8) as u64;
        cluster.charge_dfs_write(x_bytes);
        cluster.charge_dfs_read(x_bytes); // XtX job reads X
        cluster.charge_dfs_read(x_bytes); // YtX job reads X
        cluster.charge_dfs_read(x_bytes); // ss3 job reads X
        // …and compute XtX from the stored X.
        let (_, _) = x_rdd.aggregate(
            "XtX/from-stored-X",
            || SmallMat(Mat::zeros(d, d)),
            |acc, x: &Vec<f64>| acc.0.add_outer(1.0, x, x),
            |acc, o| acc.0.add_assign(&o.0),
        );
        let mx = cluster.metrics();
        (mx.virtual_time_secs, mx.intermediate_bytes)
    };
    table.row(&[
        "Minimize intermediate data".into(),
        fmt_secs(with),
        fmt_secs(without),
        format!("{:.0}x", without / with),
    ]);
    println!(
        "intermediate bytes for the XtX pipeline: consolidated {} vs materialized-X {}\n",
        fmt_bytes(with_bytes),
        fmt_bytes(without_bytes)
    );

    // ---- 3. Frobenius norm (Algorithm 3 vs Algorithm 2). -------------------
    let msum = linalg::vector::norm2_sq(&mean);
    let blocks = y.split_rows(16);
    let with = {
        let cluster = fresh_cluster();
        let tasks: Vec<_> = blocks
            .iter()
            .map(|b| {
                let mean = &mean;
                move || frobenius::centered_sq_block(b, mean, msum)
            })
            .collect();
        let parts = cluster.run_stage(StageOptions::new("Fnorm/alg3"), tasks);
        let _total: f64 = parts.iter().sum();
        cluster.metrics().virtual_time_secs
    };
    let without = {
        let cluster = fresh_cluster();
        let tasks: Vec<_> = blocks
            .iter()
            .map(|b| {
                let mean = &mean;
                move || frobenius::centered_sq_simple_block(b, mean)
            })
            .collect();
        let parts = cluster.run_stage(StageOptions::new("Fnorm/alg2"), tasks);
        let _total: f64 = parts.iter().sum();
        cluster.metrics().virtual_time_secs
    };
    table.row(&[
        "Frobenius norm".into(),
        fmt_secs(with),
        fmt_secs(without),
        format!("{:.0}x", without / with),
    ]);

    table.print();
    println!("\n(paper, 100K-row Tweets subset at full 71.5K dimensionality:");
    println!(" mean propagation 2 s vs 5,400 s; intermediate data 3 s vs 2,640 s;");
    println!(" Frobenius 0.4 s vs 102 s — gaps grow with scale)");
}
