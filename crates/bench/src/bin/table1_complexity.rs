//! Table 1 — empirical check of the time/communication complexity
//! analysis of Section 2.
//!
//! For each method, scale one input axis by 4× and report how measured
//! cost scales, next to the paper's analytical bound:
//!
//! | Method | Time bound | Communication bound |
//! |---|---|---|
//! | Covariance eigendecomposition (MLlib) | O(N·D·min(N,D)) | O(D²) |
//! | SVD-Bidiag | O(N·D² + D³) | O(max((N+D)d, D²)) |
//! | Stochastic SVD (Mahout) | O(N·D·d) | O(max(N·d, d²)) |
//! | Probabilistic PCA (sPCA) | O(N·D·d) | O(D·d) |

use baselines::{svd_bidiag, MahoutConfig, MahoutPca, MllibConfig, MllibPca};
use spca_bench::{data, fmt_bytes, fresh_cluster, Table};
use spca_core::{Spca, SpcaConfig};
use std::time::Instant;

/// log₄ of the measured ratio — the empirical scaling exponent for a 4×
/// input growth.
fn exponent(small: f64, large: f64) -> f64 {
    (large / small).ln() / 4.0_f64.ln()
}

fn main() {
    let _trace = spca_bench::cli::trace_args("table1_complexity", "Table 1: measured scaling vs the complexity analysis", &[]);
    println!("=== Table 1: measured scaling vs the paper's complexity analysis ===\n");
    let d = 10;

    // ---- Communication: scale D by 4 (N fixed), then N by 4 (D fixed). ----
    let mut comm = Table::new(&[
        "Method",
        "bytes @D=256",
        "bytes @D=1024",
        "D-exponent",
        "bytes @N=2000",
        "bytes @N=8000",
        "N-exponent",
        "paper bound",
    ]);

    let spca_bytes = |rows: usize, cols: usize| -> u64 {
        let y = data::tweets(rows, cols, 1);
        let cluster = fresh_cluster();
        Spca::new(
            SpcaConfig::new(d)
                .with_max_iters(2)
                .with_rel_tolerance(None)
                .with_partitions(8)
                .with_seed(7),
        )
        .fit_spark(&cluster, &y)
        .expect("spca fit")
        .intermediate_bytes
    };
    let mllib_bytes = |rows: usize, cols: usize| -> u64 {
        let y = data::tweets(rows, cols, 1);
        let cluster = fresh_cluster();
        MllibPca::new(MllibConfig::new(d).with_partitions(4))
            .fit(&cluster, &y)
            .expect("mllib fit")
            .intermediate_bytes
    };
    let mahout_bytes = |rows: usize, cols: usize| -> u64 {
        let y = data::tweets(rows, cols, 1);
        let cluster = fresh_cluster();
        MahoutPca::new(MahoutConfig::new(d).with_max_iters(1).with_partitions(8).with_seed(7))
            .fit(&cluster, &y)
            .expect("mahout fit")
            .intermediate_bytes
    };

    type BytesFn<'a> = &'a dyn Fn(usize, usize) -> u64;
    let rows_fixed = 2_000;
    let methods: [(&str, BytesFn<'_>, &str); 3] = [
        ("MLlib-PCA (covariance)", &mllib_bytes, "O(D^2), indep. of N"),
        ("Mahout-PCA (SSVD)", &mahout_bytes, "O(N*d): linear in N"),
        ("sPCA (PPCA)", &spca_bytes, "O(D*d): linear in D, indep. of N"),
    ];
    for (name, f, bound) in methods {
        eprintln!("{name} …");
        let d_small = f(rows_fixed, 256);
        let d_large = f(rows_fixed, 1024);
        let n_small = f(2_000, 512);
        let n_large = f(8_000, 512);
        comm.row(&[
            name.into(),
            fmt_bytes(d_small),
            fmt_bytes(d_large),
            format!("{:.2}", exponent(d_small as f64, d_large as f64)),
            fmt_bytes(n_small),
            fmt_bytes(n_large),
            format!("{:.2}", exponent(n_small as f64, n_large as f64)),
            bound.into(),
        ]);
    }
    println!("-- Communication (intermediate bytes) --");
    comm.print();

    // ---- SVD-Bidiag: centralized time scaling in D (O(N·D² + D³)). --------
    println!("\n-- SVD-Bidiag (centralized) time scaling --");
    let mut time_table =
        Table::new(&["Method", "secs @D=64", "secs @D=256", "D-exponent", "paper bound"]);
    let bidiag_secs = |cols: usize| -> f64 {
        let y = data::tweets(1_000, cols, 1).to_dense();
        let start = Instant::now();
        let _ = svd_bidiag::fit_dense(&y, d).expect("bidiag fit");
        start.elapsed().as_secs_f64()
    };
    let t_small = bidiag_secs(64);
    let t_large = bidiag_secs(256);
    time_table.row(&[
        "SVD-Bidiag".into(),
        format!("{t_small:.3}"),
        format!("{t_large:.3}"),
        format!("{:.2}", exponent(t_small, t_large)),
        "O(N*D^2 + D^3): exponent ~2".into(),
    ]);
    time_table.print();

    // Analytical communication of SVD-Bidiag for the record.
    println!(
        "\nSVD-Bidiag communication bound at N=2000: D=256 → {}, D=1024 → {}",
        fmt_bytes(svd_bidiag::intermediate_bytes_estimate(2_000, 256, d)),
        fmt_bytes(svd_bidiag::intermediate_bytes_estimate(2_000, 1024, d)),
    );
}
