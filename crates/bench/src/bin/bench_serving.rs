//! Multi-tenant serving benchmark: scheduler policies under mixed
//! fit+serve load.
//!
//! Replays one skewed tenant mix — a heavy tenant flooding the fit queue
//! plus light tenants that both fit and serve — under each scheduler
//! policy on one simulated cluster, and reports the serving latency
//! distribution (virtual p50/p99), throughput, admission/rejection and
//! model-cache counters, and the light tenants' p99 fit-job wait. The
//! headline claims the numbers back:
//!
//! * fair-share keeps the light tenants' p99 wait measurably below
//!   FIFO's convoy on the same queue;
//! * the full shape pushes ≥1M simulated transform requests across
//!   ≥128 virtual nodes, every one really projected through the fitted
//!   model (the trace hash pins the response bits).
//!
//! All latencies are virtual (modeled) time — bitwise identical on every
//! host — so the perf gate holds the counts and trace hashes exact and
//! bands only deliberate cost-model changes.
//!
//! Usage:
//!   bench_serving             # full shape (128 nodes, 1M+ requests), writes BENCH_serving.json
//!   bench_serving --smoke     # paper cluster, small mix, quick CI sanity run
//!   bench_serving --out FILE.json  # override the output path

use std::sync::Arc;

use dcluster::jobs::percentile;
use dcluster::{ClusterConfig, SchedulerPolicy, SimCluster};
use linalg::{Prng, SparseMat};
use spca_core::serving::{run_serving, FitJob, ServeLoad, ServeSpec, ServingOutcome, TenantWorkload};
use spca_core::SpcaConfig;

struct Shape {
    nodes: usize,
    cores_per_node: usize,
    heavy_jobs: usize,
    light_tenants: usize,
    batches_per_tenant: usize,
    batch_rows: usize,
    rate_per_sec: f64,
    fit_rows: usize,
    fit_cols: usize,
    d: usize,
    iters: usize,
}

impl Shape {
    fn requests(&self) -> u64 {
        (self.light_tenants * self.batches_per_tenant * self.batch_rows) as u64
    }
}

fn fit_matrix(shape: &Shape, seed: u64) -> Arc<SparseMat> {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = datasets::LowRankSpec {
        rows: shape.fit_rows,
        cols: shape.fit_cols,
        ..datasets::LowRankSpec::small_test()
    };
    Arc::new(datasets::sparse_lowrank(&spec, &mut rng))
}

/// The skewed mix: tenant 0 floods whole-cluster fit jobs at t≈0 and
/// never serves; each light tenant submits one small fit job behind the
/// flood and serves its batch stream as soon as that model lands.
fn build_spec(shape: &Shape, total_cores: usize) -> ServeSpec {
    let heavy_y = fit_matrix(shape, 101);
    let mut spec = ServeSpec::new(0x5e41);
    let mut heavy = TenantWorkload { name: "heavy".into(), ..Default::default() };
    for i in 0..shape.heavy_jobs {
        heavy.fit_jobs.push(FitJob {
            id: format!("heavy-{i}"),
            submit_secs: 0.01 * i as f64,
            cores: total_cores,
            y: Arc::clone(&heavy_y),
            config: SpcaConfig::new(shape.d)
                .with_max_iters(shape.iters)
                .with_seed(29)
                .with_rel_tolerance(None),
        });
    }
    spec.tenants.push(heavy);
    for t in 0..shape.light_tenants {
        let y = fit_matrix(shape, 200 + t as u64);
        spec.tenants.push(TenantWorkload {
            name: format!("light-{t}"),
            fit_jobs: vec![FitJob {
                id: format!("light-{t}-fit"),
                submit_secs: 0.5 + 0.1 * t as f64,
                cores: (total_cores / 8).max(1),
                y: Arc::clone(&y),
                config: SpcaConfig::new(shape.d)
                    .with_max_iters(shape.iters)
                    .with_seed(31 + t as u64)
                    .with_rel_tolerance(None),
            }],
            serve: Some(ServeLoad {
                pool: y,
                batches: shape.batches_per_tenant,
                batch_rows: shape.batch_rows,
                rate_per_sec: shape.rate_per_sec,
                start_secs: 0.0,
            }),
            model: None,
        });
    }
    spec
}

struct PolicyResult {
    policy: SchedulerPolicy,
    out: ServingOutcome,
    light_p99_wait: f64,
}

fn run_policy(shape: &Shape, policy: SchedulerPolicy) -> PolicyResult {
    let cfg = ClusterConfig::paper_cluster()
        .with_nodes(shape.nodes)
        .with_cores_per_node(shape.cores_per_node)
        .with_scheduler(policy)
        .with_fair_share_weights(vec![1.0; shape.light_tenants + 1]);
    let total = cfg.total_cores();
    let cluster = SimCluster::new(cfg);
    let spec = build_spec(shape, total);
    let out = run_serving(&cluster, &spec).expect("serving run");
    let mut waits: Vec<f64> = out
        .schedule
        .records
        .iter()
        .filter(|r| r.tenant != 0)
        .map(|r| r.wait_secs())
        .collect();
    waits.sort_by(f64::total_cmp);
    let light_p99_wait = percentile(&waits, 99.0);
    PolicyResult { policy, out, light_p99_wait }
}

fn tenant_json(out: &ServingOutcome) -> String {
    out.tenants
        .iter()
        .map(|t| {
            format!(
                "        {{\"name\": \"{}\", \"jobs_completed\": {}, \"jobs_rejected\": {}, \
                 \"wait_virtual_secs\": {:.4}, \"run_virtual_secs\": {:.4}, \
                 \"requests\": {}, \"batches_rejected\": {}, \"cache_hit_rate\": {:.4}, \
                 \"qps_virtual\": {:.2}}}",
                t.name,
                t.jobs_completed,
                t.jobs_rejected,
                t.wait_secs_total,
                t.run_secs_total,
                t.requests,
                t.batches_rejected,
                t.cache_hit_rate(),
                t.qps,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn policy_json(r: &PolicyResult) -> String {
    format!(
        "    {{\n      \"policy\": \"{}\",\n      \"requests\": {},\n      \"batches\": {},\n      \
         \"rejected\": {},\n      \"model_broadcasts\": {},\n      \"model_rebroadcasts\": {},\n      \
         \"latency_p50_virtual_secs\": {:.6},\n      \"latency_p99_virtual_secs\": {:.6},\n      \
         \"light_p99_wait_virtual_secs\": {:.4},\n      \"makespan_virtual_secs\": {:.4},\n      \
         \"trace_hash\": \"{:#018x}\",\n      \"tenants\": [\n{}\n      ]\n    }}",
        r.policy.label(),
        r.out.requests_total,
        r.out.batches_total,
        r.out.rejected_total,
        r.out.broadcasts,
        r.out.rebroadcasts,
        r.out.latency_p50_secs,
        r.out.latency_p99_secs,
        r.light_p99_wait,
        r.out.makespan_secs,
        r.out.trace_hash,
        tenant_json(&r.out),
    )
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_serving",
        "Multi-tenant serving benchmark: scheduler policies under mixed fit+serve load",
        &[
            ("--smoke", "Small mix on the paper cluster (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_serving.json)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let shape = if smoke {
        Shape {
            nodes: 8,
            cores_per_node: 8,
            heavy_jobs: 6,
            light_tenants: 2,
            batches_per_tenant: 50,
            batch_rows: 5,
            rate_per_sec: 40.0,
            fit_rows: 200,
            fit_cols: 60,
            d: 3,
            iters: 3,
        }
    } else {
        Shape {
            nodes: 128,
            cores_per_node: 8,
            heavy_jobs: 10,
            light_tenants: 4,
            batches_per_tenant: 2_600,
            batch_rows: 100,
            rate_per_sec: 60.0,
            fit_rows: 2_000,
            fit_cols: 500,
            d: 8,
            iters: 3,
        }
    };
    println!(
        "{} nodes x {} cores, {} heavy fit jobs, {} serving tenants, {} transform requests",
        shape.nodes,
        shape.cores_per_node,
        shape.heavy_jobs,
        shape.light_tenants,
        shape.requests(),
    );
    if !smoke {
        assert!(shape.nodes >= 100, "full shape must span >=100 virtual nodes");
        assert!(shape.requests() >= 1_000_000, "full shape must serve >=1M requests");
    }

    let mut results = Vec::new();
    for policy in SchedulerPolicy::all() {
        let r = run_policy(&shape, policy);
        println!(
            "{:<11}  served {:>9}  rejected {:>6}  p50 {:>9.4}s  p99 {:>9.4}s  \
             light-wait p99 {:>8.2}s  makespan {:>8.1}s",
            r.policy.label(),
            r.out.requests_total,
            r.out.rejected_total,
            r.out.latency_p50_secs,
            r.out.latency_p99_secs,
            r.light_p99_wait,
            r.out.makespan_secs,
        );
        results.push(r);
    }

    let fifo = results
        .iter()
        .find(|r| r.policy == SchedulerPolicy::Fifo)
        .expect("fifo result");
    let fair = results
        .iter()
        .find(|r| r.policy == SchedulerPolicy::FairShare)
        .expect("fair-share result");
    assert!(
        fair.light_p99_wait < fifo.light_p99_wait,
        "fair-share p99 light-tenant wait ({:.2}s) must beat FIFO ({:.2}s)",
        fair.light_p99_wait,
        fifo.light_p99_wait
    );
    let ratio = fair.light_p99_wait / fifo.light_p99_wait.max(1e-12);
    println!(
        "fair-share light-tenant p99 wait is {:.1}% of FIFO's",
        100.0 * ratio
    );

    let body: Vec<String> = results.iter().map(policy_json).collect();
    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"shape\": {{\"nodes\": {}, \"cores_per_node\": {}, \
         \"heavy_jobs\": {}, \"light_tenants\": {}, \"batches_per_tenant\": {}, \
         \"batch_rows\": {}, \"requests\": {}}},\n  \
         \"fair_over_fifo_p99_wait_virtual_ratio\": {:.4},\n  \"policies\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        shape.nodes,
        shape.cores_per_node,
        shape.heavy_jobs,
        shape.light_tenants,
        shape.batches_per_tenant,
        shape.batch_rows,
        shape.requests(),
        ratio,
        body.join(",\n"),
    );
    obs::json::validate(&json).expect("benchmark JSON must be valid");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
