//! Figure 8 — driver memory consumption vs dimensionality D,
//! sPCA-Spark vs MLlib-PCA.
//!
//! Paper shape: sPCA's driver memory is essentially flat in D (it holds
//! O(D·d) state), while MLlib's grows quadratically until it exceeds the
//! driver's memory and the run fails — this figure explains Figure 7's
//! failures.

use baselines::{MllibConfig, MllibPca};
use spca_bench::{data, fmt_bytes, fresh_cluster, Table, D_COMPONENTS};
use spca_core::{Spca, SpcaConfig};

fn main() {
    let _trace = spca_bench::cli::trace_args("fig8_driver_memory", "Figure 8: peak driver memory vs number of columns", &[]);
    let cap = fresh_cluster().config().driver_memory;
    println!("=== Figure 8: peak driver memory vs #columns (N = 20000) ===");
    println!("(driver memory cap: {})\n", fmt_bytes(cap));

    let rows = 20_000;
    let mut table =
        Table::new(&["Columns (D)", "sPCA-Spark peak", "MLlib-PCA peak", "MLlib outcome"]);

    for cols in [512usize, 1_024, 2_048, 3_072, 4_096, 6_144] {
        eprintln!("D = {cols} …");
        let y = data::tweets(rows, cols, 1);
        let d = D_COMPONENTS.min(cols / 4).max(4);

        let cluster = fresh_cluster();
        let _ = Spca::new(
            SpcaConfig::new(d).with_max_iters(2).with_partitions(16).with_seed(7),
        )
        .fit_spark(&cluster, &y)
        .expect("sPCA never exceeds the driver cap");
        let spca_peak = cluster.metrics().driver_peak_bytes;

        let cluster = fresh_cluster();
        let outcome = match MllibPca::new(MllibConfig::new(d).with_partitions(4)).fit(&cluster, &y)
        {
            Ok(_) => "ok".to_string(),
            Err(spca_core::SpcaError::Cluster(e)) => format!("fail: {e}"),
            Err(e) => format!("fail: {e}"),
        };
        // On OOM the tracked peak is whatever fit before refusal; report
        // the demand instead so the quadratic curve stays visible.
        let mllib_demand = 2 * (cols as u64) * (cols as u64) * 8;
        let mllib_peak = cluster.metrics().driver_peak_bytes.max(mllib_demand);

        table.row(&[
            cols.to_string(),
            fmt_bytes(spca_peak),
            fmt_bytes(mllib_peak),
            outcome,
        ]);
    }
    table.print();
    println!("\n(sPCA column grows linearly with D; MLlib column grows with D²");
    println!(" and crosses the cap where Figure 7 reports failures)");
}
