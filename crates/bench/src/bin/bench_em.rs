//! EM hot-path benchmark: row-at-a-time vs batched per-partition YtX fold.
//!
//! Times one sPCA EM iteration's dominant job (the consolidated
//! `YtX`/`XtX`/`Σx` pass) at the paper's sparse shapes, comparing the
//! row-at-a-time ablation arm (`RowwisePartial::add_row` per sparse row,
//! HashMap accumulator) against the batched kernels
//! (`YtxPartial::add_block`: blocked sparse GEMM + SYRK + packed-slab
//! scatter). Both arms fan partitions out on the same worker pool and
//! reduce with the same deterministic tree merge, so the measured delta is
//! the per-partition kernel work only.
//!
//! No external harness — each arm is timed with `Instant`, best of several
//! repetitions, results written as hand-rolled JSON (validated with the
//! in-tree RFC 8259 recognizer before the write).
//!
//! Usage:
//!   bench_em                  # full shape (100k x 10k, 1e-3), writes BENCH_em.json
//!   bench_em --smoke          # small shape, quick CI sanity run
//!   bench_em --out FILE.json  # override the output path
//!   bench_em --trace T.json   # also write a Chrome trace_event file

use std::time::Instant;

use linalg::{Mat, Prng, SparseMat, WorkerPool};
use sparkle::tree_merge;
use spca_core::mean_prop::{rowwise::RowwisePartial, YtxPartial};

/// Times one call of `f`.
fn timed<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let v = f();
    (start.elapsed().as_secs_f64(), v)
}

fn random_sparse(rng: &mut Prng, rows: usize, cols: usize, density: f64) -> SparseMat {
    let target = ((rows * cols) as f64 * density) as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        triplets.push((rng.index(rows), rng.index(cols) as u32, rng.normal()));
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

/// Row-at-a-time arm: every partition folds its rows one by one into a
/// HashMap-keyed partial (the pre-batching implementation, kept as the
/// ablation reference).
fn run_rowwise(
    pool: &WorkerPool,
    blocks: &[SparseMat],
    cm: &Mat,
    xm: &[f64],
) -> RowwisePartial {
    let d = cm.cols();
    let partials = pool.run(
        blocks
            .iter()
            .map(|b| {
                move || {
                    let mut p = RowwisePartial::new(d);
                    for r in 0..b.rows() {
                        p.add_row(b.row(r), cm, xm);
                    }
                    p
                }
            })
            .collect(),
    );
    tree_merge(partials, || RowwisePartial::new(d), |a, b| a.merge(b))
}

/// Batched arm: every partition goes through the blocked kernels in one
/// `add_block` call (sparse GEMM into reused scratch, SYRK, packed-slab
/// SpMM scatter). Nested kernel batches ride the same pool.
fn run_batched(pool: &WorkerPool, blocks: &[SparseMat], cm: &Mat, xm: &[f64]) -> YtxPartial {
    let d = cm.cols();
    let partials = pool.run(
        blocks
            .iter()
            .map(|b| {
                move || {
                    let mut p = YtxPartial::new(d);
                    p.add_block_with_pool(pool, b, cm, xm);
                    p
                }
            })
            .collect(),
    );
    tree_merge(partials, || YtxPartial::new(d), |a, b| a.merge(b))
}

/// Mixed-precision arm: the batched fold through a reduced-precision
/// kernel arm (`--precision f32|bf16`), merged in full `f64` like the EM
/// engines do.
fn run_precision(
    pool: &WorkerPool,
    blocks: &[SparseMat],
    cm: &Mat,
    xm: &[f64],
    precision: linalg::Precision,
) -> YtxPartial {
    let d = cm.cols();
    let partials = pool.run(
        blocks
            .iter()
            .map(|b| {
                move || {
                    let mut p = YtxPartial::new(d);
                    p.add_block_prec_with_pool(pool, b, cm, xm, precision);
                    p
                }
            })
            .collect(),
    );
    tree_merge(partials, || YtxPartial::new(d), |a, b| a.merge(b))
}

fn main() {
    let _trace = spca_bench::cli::trace_args(
        "bench_em",
        "EM hot-path benchmark: row-at-a-time vs batched per-partition YtX fold",
        &[
            ("--smoke", "Small shape (quick CI sanity run)"),
            ("--out FILE", "Results JSON path (default BENCH_em.json)"),
            ("--partitions N", "Partition count override"),
            ("--precision ARM", "Also time a reduced-precision arm (f32|bf16)"),
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_em.json".to_string());
    let precision = args
        .iter()
        .position(|a| a == "--precision")
        .and_then(|i| args.get(i + 1))
        .map(|v| linalg::Precision::parse(v).expect("--precision takes f64|f32|bf16"));

    // The paper's regime: tall sparse Y (N ≫ D ≫ d), ~0.1% dense.
    let (n, d_in, density, d, default_parts, reps) = if smoke {
        (2_000, 500, 5e-3, 8, 8, 2)
    } else {
        (100_000, 10_000, 1e-3, 32, 32, 5)
    };
    let partitions: usize = args
        .iter()
        .position(|a| a == "--partitions")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--partitions takes a positive integer"))
        .unwrap_or(default_parts);

    let mut rng = Prng::seed_from_u64(2015);
    let y = random_sparse(&mut rng, n, d_in, density);
    let cm = rng.normal_mat(d_in, d);
    let xm = rng.normal_vec(d);
    let mean = y.col_means();
    let blocks = y.split_rows(partitions);
    let pool = WorkerPool::global();

    println!(
        "Y: {n}x{d_in} ({} nnz, {:.2e} dense), d={d}, {partitions} partitions, {} pool workers",
        y.nnz(),
        y.nnz() as f64 / (n as f64 * d_in as f64),
        pool.workers()
    );

    // Interleave the arms rep by rep (both sample the same machine-noise
    // environment) and keep the best of each — the usual noise filter for
    // single-machine microbenchmarks.
    let (mut rowwise_secs, mut batched_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut rowwise, mut batched) = (None, None);
    for _ in 0..reps {
        let (t, r) = timed(|| run_rowwise(pool, &blocks, &cm, &xm));
        if t < rowwise_secs {
            rowwise_secs = t;
        }
        rowwise = Some(r);
        let (t, b) = timed(|| run_batched(pool, &blocks, &cm, &xm));
        if t < batched_secs {
            batched_secs = t;
        }
        batched = Some(b);
    }
    let (rowwise, batched) = (rowwise.expect("reps >= 1"), batched.expect("reps >= 1"));
    let speedup = rowwise_secs / batched_secs.max(1e-12);

    // Correctness: the batched fold must match the row-at-a-time reference.
    let rw_ytx = rowwise.finalize_ytx(&mean);
    let bt_ytx = batched.finalize_ytx(&mean);
    let scale = rw_ytx
        .data()
        .iter()
        .chain(rowwise.xtx.data())
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1.0);
    let max_rel_diff =
        bt_ytx.max_abs_diff(&rw_ytx).max(batched.xtx.max_abs_diff(&rowwise.xtx)) / scale;
    assert!(
        max_rel_diff <= 1e-10,
        "batched fold diverged from the row-at-a-time reference ({max_rel_diff:.3e})"
    );

    // Determinism: the batched result must be bitwise identical on any
    // pool size (chunking is a function of the problem shape only).
    let bitwise_deterministic = [1usize, 2].iter().all(|&w| {
        let small = WorkerPool::new(w);
        let p = run_batched(&small, &blocks, &cm, &xm);
        p.finalize_ytx(&mean).max_abs_diff(&bt_ytx) == 0.0
            && p.xtx.max_abs_diff(&batched.xtx) == 0.0
    });
    assert!(bitwise_deterministic, "batched fold is not worker-count deterministic");

    println!(
        "rowwise {rowwise_secs:>9.4}s  batched {batched_secs:>9.4}s  speedup {speedup:.2}x  \
         maxreldiff {max_rel_diff:.2e}  deterministic {bitwise_deterministic}"
    );

    // Optional reduced-precision arm: same fold, narrower kernels. Its
    // speedup is measured against the batched f64 arm and its divergence
    // against the f64 result (relative to the result's own scale).
    let mut precision_json = String::new();
    if let Some(arm) = precision.filter(|&p| p != linalg::Precision::F64) {
        let mut arm_secs = f64::INFINITY;
        let mut arm_result = None;
        for _ in 0..reps {
            let (t, p) = timed(|| run_precision(pool, &blocks, &cm, &xm, arm));
            if t < arm_secs {
                arm_secs = t;
            }
            arm_result = Some(p);
        }
        let arm_result = arm_result.expect("reps >= 1");
        let arm_speedup = batched_secs / arm_secs.max(1e-12);
        let arm_ytx = arm_result.finalize_ytx(&mean);
        let arm_rel_diff =
            arm_ytx.max_abs_diff(&bt_ytx).max(arm_result.xtx.max_abs_diff(&batched.xtx)) / scale;
        let arm_deterministic = {
            let small = WorkerPool::new(2);
            let p = run_precision(&small, &blocks, &cm, &xm, arm);
            p.finalize_ytx(&mean).max_abs_diff(&arm_ytx) == 0.0
                && p.xtx.max_abs_diff(&arm_result.xtx) == 0.0
        };
        assert!(arm_deterministic, "{arm} arm is not worker-count deterministic");
        println!(
            "{arm} arm {arm_secs:>9.4}s  speedup-vs-f64 {arm_speedup:.2}x  \
             maxreldiff {arm_rel_diff:.2e}  deterministic {arm_deterministic}"
        );
        precision_json = format!(
            ",\n  \"precision\": {{\"arm\": \"{}\", \"secs\": {arm_secs:.6e}, \"speedup_vs_f64\": {arm_speedup:.3}, \"max_rel_diff_vs_f64\": {arm_rel_diff:.3e}, \"bitwise_deterministic\": {arm_deterministic}}}",
            arm.label(),
        );
    }

    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"pool_workers\": {},\n  \"shape\": {{\"rows\": {n}, \"cols\": {d_in}, \"density\": {density}, \"nnz\": {}, \"d\": {d}, \"partitions\": {partitions}}},\n  \"reps\": {reps},\n  \"rowwise_secs\": {rowwise_secs:.6e},\n  \"batched_secs\": {batched_secs:.6e},\n  \"speedup\": {speedup:.3},\n  \"max_rel_diff\": {max_rel_diff:.3e},\n  \"bitwise_deterministic\": {bitwise_deterministic}{precision_json}\n}}\n",
        if smoke { "smoke" } else { "full" },
        pool.workers(),
        y.nnz(),
    );
    obs::json::validate(&json).expect("benchmark JSON must be valid");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");

    if !smoke {
        // The acceptance bar for the batched path at the paper's shape.
        assert!(speedup >= 2.0, "batched path below the 2x bar ({speedup:.2}x)");
    }
}
