//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (see DESIGN.md's per-experiment index).
//! This library holds what they share: scaled dataset constructors, the
//! "ideal error" reference runs, time/byte formatting, and a tiny
//! fixed-width table printer.
//!
//! Scale note: the paper's datasets are up to 1.26 B rows on a 64-core
//! cluster; the reproduction runs laptop-scale replicas (documented in
//! DESIGN.md §1) on the simulated cluster, sweeping sizes over the same
//! axes. Absolute numbers differ; the comparisons are about *shape*.

pub mod cli;
pub mod gate;
pub mod plot;

use dcluster::{ClusterConfig, SimCluster};
use linalg::{Prng, SparseMat};
use spca_core::{accuracy, Spca, SpcaConfig};

/// Default principal-component count (the paper uses 50 everywhere).
pub const D_COMPONENTS: usize = 50;

/// Scaled stand-ins for the paper's four datasets.
pub mod data {
    use super::*;

    /// Tweets-like sparse binary matrix.
    pub fn tweets(rows: usize, cols: usize, seed: u64) -> SparseMat {
        datasets::tweets::generate(rows, cols, &mut Prng::seed_from_u64(seed))
    }

    /// Bio-Text-like sparse binary matrix (denser rows).
    pub fn biotext(rows: usize, cols: usize, seed: u64) -> SparseMat {
        datasets::biotext::generate(rows, cols, &mut Prng::seed_from_u64(seed))
    }

    /// Diabetes-like dense real-valued spectra, stored sparse.
    pub fn diabetes(rows: usize, cols: usize, seed: u64) -> SparseMat {
        datasets::diabetes::generate_sparse(rows, cols, &mut Prng::seed_from_u64(seed))
    }

    /// Images-like dense SIFT descriptors, stored sparse.
    pub fn images(rows: usize, cols: usize, seed: u64) -> SparseMat {
        datasets::images::generate_sparse(rows, cols, &mut Prng::seed_from_u64(seed))
    }
}

/// A fresh paper-shaped cluster (8 nodes × 8 cores) with laptop-scaled
/// memory so the paper's memory walls appear at the scaled dimensions.
pub fn fresh_cluster() -> SimCluster {
    SimCluster::new(ClusterConfig::scaled_cluster())
}

/// Ideal reconstruction error for a dataset: a long sPCA-Spark reference
/// run (the paper: "the ideal accuracy that can be achieved with 50
/// principal components after a large number of iterations").
pub fn ideal_error(y: &SparseMat, d: usize, seed: u64) -> f64 {
    let cluster = fresh_cluster();
    let config = SpcaConfig::new(d)
        .with_max_iters(25)
        .with_rel_tolerance(Some(1e-5))
        .with_seed(seed)
        .with_partitions(16);
    Spca::new(config)
        .fit_spark(&cluster, y)
        .expect("reference run must succeed")
        .final_error()
}

/// The error threshold for "reached `percent`% of the ideal accuracy".
pub fn target_error(ideal: f64, percent: f64) -> f64 {
    accuracy::target_error_for(ideal, percent)
}

/// Formats seconds the way the paper's tables do (whole seconds).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 10.0 {
        format!("{secs:.1}")
    } else {
        format!("{:.0}", secs.round())
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Minimal fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out
        };
        let sep = {
            let mut out = String::from("|");
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out
        };
        println!("{}", line(&self.headers));
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MB");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(3.14), "3.1");
        assert_eq!(fmt_secs(123.7), "124");
    }

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn ideal_error_is_finite_and_reachable() {
        let y = data::tweets(400, 200, 1);
        let ideal = ideal_error(&y, 5, 1);
        assert!(ideal.is_finite() && ideal > 0.0);
        let target = target_error(ideal, 95.0);
        assert!(target > ideal);
    }
}
