//! Terminal scatter plots for the accuracy-vs-time figures.
//!
//! The paper's Figures 4–6 are line charts; the experiment binaries print
//! both the raw series (for regeneration elsewhere) and this quick ASCII
//! rendering so the shape is visible straight from the terminal.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from a name and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

const MARKERS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// Renders the series into a `width`×`height` character grid with axis
/// ranges derived from the data. `log_x` plots x on a log₁₀ scale (the
/// paper's Figures 5 and 6 use log axes).
pub fn render_xy(series: &[Series], width: usize, height: usize, log_x: bool) -> String {
    assert!(width >= 16 && height >= 4, "plot area too small");
    let xform = |x: f64| if log_x { x.max(1e-12).log10() } else { x };

    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, y)| (xform(x), y)))
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in &s.points {
            let xr = (xform(x) - x_min) / (x_max - x_min);
            let yr = (y - y_min) / (y_max - y_min);
            let col = (xr * (width - 1) as f64).round() as usize;
            let row = height - 1 - (yr * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = marker;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:>9.1} |")
        } else if r == height - 1 {
            format!("{y_min:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}+{}\n", "", "-".repeat(width)));
    let x_lo = if log_x { 10f64.powf(x_min) } else { x_min };
    let x_hi = if log_x { 10f64.powf(x_max) } else { x_max };
    out.push_str(&format!(
        "{:>11}{:<.1}{}{:>.1}{}\n",
        "",
        x_lo,
        " ".repeat(width.saturating_sub(16)),
        x_hi,
        if log_x { "  (log x)" } else { "" }
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKERS[si % MARKERS.len()], s.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let s = vec![
            Series::new("first", vec![(0.0, 0.0), (10.0, 100.0)]),
            Series::new("second", vec![(5.0, 50.0)]),
        ];
        let out = render_xy(&s, 40, 10, false);
        assert!(out.contains('o'));
        assert!(out.contains('x'));
        assert!(out.contains("first"));
        assert!(out.contains("second"));
        assert_eq!(out.lines().count(), 10 + 2 + 2);
    }

    #[test]
    fn log_axis_compresses_decades() {
        let s = vec![Series::new("wide", vec![(1.0, 1.0), (10.0, 2.0), (10_000.0, 3.0)])];
        let out = render_xy(&s, 60, 8, true);
        assert!(out.contains("(log x)"));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let out = render_xy(&[Series::new("empty", vec![])], 30, 6, false);
        assert!(out.contains("no data"));
    }

    #[test]
    fn constant_series_do_not_divide_by_zero() {
        let s = vec![Series::new("flat", vec![(1.0, 5.0), (2.0, 5.0)])];
        let out = render_xy(&s, 30, 6, false);
        assert!(out.contains('o'));
    }
}
