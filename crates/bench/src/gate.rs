//! The performance regression gate: diff a freshly produced run ledger or
//! benchmark JSON against a committed baseline.
//!
//! Every leaf of both JSON documents is flattened to a dotted path and
//! classified by a tolerance rule:
//!
//! * **exact** — byte counts, record counts, iteration counts, model
//!   hashes, integrity counters, convergence errors. The simulator is
//!   deterministic, so these must match bit for bit; any drift is either
//!   a real behavior change or a broken reproducibility contract.
//! * **band** — virtual-time metrics (`virtual_time_secs`, per-category
//!   `*_us` attribution). Deliberate cost-model changes move these, so
//!   they pass within a configurable relative band and fail beyond it.
//!   µs-unit metrics additionally tolerate a few µs of absolute delta
//!   (integer-µs truncation jitter on near-zero windows).
//! * **ignore** — host wall-clock measurements (`*_mb_per_sec`, kernel
//!   `*_secs` timings, `speedup`), the cpu attribution slot and `*cpu_us`
//!   counters (the one *measured* clock in the simulator — host compute
//!   time in disguise), and histogram shape statistics (mean/p50/p99):
//!   machine-dependent noise with no gate value.
//!
//! A baseline key missing from the fresh document is always a regression
//! — a metric silently vanishing is exactly the failure mode a gate
//! exists to catch. Keys only present in the fresh document are reported
//! but do not fail (new telemetry should not require a same-commit
//! baseline refresh to land).

use obs::json::Json;

/// Absolute slop for µs-unit band metrics: virtual timestamps are
/// truncated to integer µs, so every window boundary carries ±1µs of
/// truncation jitter. A 2µs disk window reading 3µs on the next run is
/// not a regression; a real cost-model change moves µs metrics by orders
/// of magnitude more.
const US_SLOP: f64 = 8.0;

/// How a metric is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Bit-exact match required.
    Exact,
    /// Relative band: `|fresh - base| <= band * max(|base|, 1e-9)`.
    Band,
    /// Relative band for µs-unit metrics: as [`Rule::Band`], but an
    /// absolute delta within [`US_SLOP`] also passes (truncation jitter
    /// dominates the relative delta of near-zero windows).
    BandUs,
    /// Not compared.
    Ignore,
}

impl Rule {
    fn label(self) -> &'static str {
        match self {
            Rule::Exact => "exact",
            Rule::Band | Rule::BandUs => "band",
            Rule::Ignore => "ignore",
        }
    }
}

/// Classifies a flattened path. Rules are ordered: host-noise patterns
/// win over the time-band patterns (`rowwise_secs` is host time even
/// though it ends in `_secs`).
pub fn classify(path: &str) -> Rule {
    let last = path.rsplit('.').next().unwrap_or(path);
    // Host wall-clock measurements: noise on any shared CI runner. The
    // `per_sec` pattern covers rate gauges and whole rate histograms
    // (including their observation counts — adaptive kernel batching
    // makes even the number of rate samples host-dependent).
    if path.contains("per_sec")
        || path.contains("speedup")
        || last == "secs"
        || last == "rowwise_secs"
        || last == "batched_secs"
    {
        return Rule::Ignore;
    }
    // Serving latency histograms are virtual-time quantities, not host
    // noise: their shape statistics get the relative band (a deliberate
    // cost-model change moves them) and their counts stay exact — one
    // lost or duplicated request is a determinism bug, not noise.
    if path.contains("serve") && path.contains("virtual") && path.contains("histograms") {
        return if matches!(last, "mean" | "p50" | "p99") { Rule::Band } else { Rule::Exact };
    }
    // Histogram shape statistics (count stays exact).
    if path.contains("histograms") && matches!(last, "mean" | "p50" | "p99") {
        return Rule::Ignore;
    }
    // The cpu category is the one *measured* (not modeled) clock in the
    // simulator: cpu attribution slots and `*cpu_us` counters are host
    // compute time in disguise, with unbounded relative variance across
    // machines. The other category slots are config-derived and stay
    // banded via the rules below.
    if last.ends_with("cpu_us") || path.ends_with("cat_us.0") || path.ends_with("attribution_us.0")
    {
        return Rule::Ignore;
    }
    // Virtual-time metrics: the quantity the gate actually guards, with
    // room for deliberate cost-model changes.
    if path.contains("attribution") || path.contains("cat_us") || last.ends_with("_us") {
        return Rule::BandUs;
    }
    if path.contains("virtual")
        || last.ends_with("_secs")
        || last == "recovery_overhead"
        || last == "speculation_saving"
    {
        return Rule::Band;
    }
    Rule::Exact
}

fn flatten_into(prefix: &str, v: &Json, out: &mut Vec<(String, Json)>) {
    match v {
        Json::Obj(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten_into(&path, val, out);
            }
        }
        Json::Arr(items) => {
            for (i, val) in items.iter().enumerate() {
                flatten_into(&format!("{prefix}.{i}"), val, out);
            }
        }
        leaf => out.push((prefix.to_string(), leaf.clone())),
    }
}

/// Flattens a JSON document to sorted `(dotted.path, leaf)` pairs.
pub fn flatten(doc: &Json) -> Vec<(String, Json)> {
    let mut out = Vec::new();
    flatten_into("", doc, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn fmt_leaf(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => format!("{n}"),
        Json::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

/// One metric that failed its rule.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Dotted path of the metric.
    pub path: String,
    /// Baseline value rendered as text (`<missing>` never occurs here).
    pub baseline: String,
    /// Fresh value rendered as text, or `<missing>`.
    pub fresh: String,
    /// Relative delta for numeric pairs, `None` otherwise.
    pub rel_delta: Option<f64>,
    /// The rule that failed.
    pub rule: Rule,
}

/// Outcome of diffing one fresh document against its baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics compared under exact/band rules.
    pub compared: usize,
    /// Metrics skipped by the ignore rule.
    pub ignored: usize,
    /// Keys present only in the fresh document (informational).
    pub fresh_only: usize,
    /// Every rule failure, in path order.
    pub regressions: Vec<Regression>,
}

impl GateReport {
    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the delta table of failures (empty string when passing).
    pub fn render(&self) -> String {
        if self.passed() {
            return String::new();
        }
        let mut out = String::new();
        let mut width = "metric".len();
        for r in &self.regressions {
            width = width.max(r.path.len());
        }
        out.push_str(&format!(
            "{:<width$}  {:>16}  {:>16}  {:>9}  {}\n",
            "metric", "baseline", "fresh", "delta", "rule"
        ));
        for r in &self.regressions {
            let delta = match r.rel_delta {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "-".into(),
            };
            out.push_str(&format!(
                "{:<width$}  {:>16}  {:>16}  {:>9}  {}\n",
                r.path,
                truncate(&r.baseline, 16),
                truncate(&r.fresh, 16),
                delta,
                r.rule.label()
            ));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max - 1).collect();
        format!("{head}…")
    }
}

fn values_match(rule: Rule, base: &Json, fresh: &Json, band: f64) -> (bool, Option<f64>) {
    match (base, fresh) {
        (Json::Num(b), Json::Num(f)) => {
            let rel = if *b == 0.0 && *f == 0.0 {
                0.0
            } else {
                (f - b) / b.abs().max(1e-9)
            };
            let ok = match rule {
                Rule::Exact => b == f,
                Rule::Band => rel.abs() <= band,
                Rule::BandUs => rel.abs() <= band || (f - b).abs() <= US_SLOP,
                Rule::Ignore => true,
            };
            (ok, Some(rel))
        }
        // Non-numeric leaves (strings incl. stringified NaN/inf, bools,
        // nulls) are always compared exactly — a band on a hash or label
        // makes no sense.
        (b, f) => (matches!(rule, Rule::Ignore) || b == f, None),
    }
}

/// Diffs `fresh` against `baseline` under the tolerance rules, with
/// `band` as the relative tolerance for virtual-time metrics.
pub fn compare(baseline: &Json, fresh: &Json, band: f64) -> GateReport {
    let base_flat = flatten(baseline);
    let fresh_flat = flatten(fresh);
    let fresh_map: std::collections::BTreeMap<&str, &Json> =
        fresh_flat.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let base_keys: std::collections::BTreeSet<&str> =
        base_flat.iter().map(|(k, _)| k.as_str()).collect();

    let mut report = GateReport {
        fresh_only: fresh_flat.iter().filter(|(k, _)| !base_keys.contains(k.as_str())).count(),
        ..GateReport::default()
    };
    for (path, base_val) in &base_flat {
        let rule = classify(path);
        if rule == Rule::Ignore {
            report.ignored += 1;
            continue;
        }
        report.compared += 1;
        match fresh_map.get(path.as_str()) {
            None => report.regressions.push(Regression {
                path: path.clone(),
                baseline: fmt_leaf(base_val),
                fresh: "<missing>".into(),
                rel_delta: None,
                rule,
            }),
            Some(fresh_val) => {
                let (ok, rel) = values_match(rule, base_val, fresh_val, band);
                if !ok {
                    report.regressions.push(Regression {
                        path: path.clone(),
                        baseline: fmt_leaf(base_val),
                        fresh: fmt_leaf(fresh_val),
                        rel_delta: rel,
                        rule,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledgerish(scale: f64) -> Json {
        let doc = format!(
            r#"{{
              "ledger_version": 1,
              "tool": "bench_em",
              "integrity": {{"dropped_events": 0, "nesting_violations": 0}},
              "runs": [{{
                "label": "sPCA-Spark",
                "model_hash": "00baadf00dcafe42",
                "iterations_run": 3,
                "final_error": 0.125,
                "virtual_time_secs": {},
                "bytes": {{"network_bytes": 123456, "dfs_bytes_written": 789}},
                "attribution": {{"disk_us": {}, "network_us": {}}},
                "host": {{"encode_mb_per_sec": 472.7, "rowwise_secs": 0.52}}
              }}]
            }}"#,
            10.0 * scale,
            8_000_000.0 * scale,
            2_000_000.0 * scale,
        );
        obs::json::parse(&doc).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let report = compare(&ledgerish(1.0), &ledgerish(1.0), 0.05);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.compared > 0);
        assert!(report.ignored >= 2, "host metrics must be ignored");
        assert_eq!(report.render(), "");
    }

    #[test]
    fn ten_percent_virtual_slowdown_fails_a_five_percent_band() {
        let report = compare(&ledgerish(1.0), &ledgerish(1.10), 0.05);
        assert!(!report.passed());
        // All three virtual-time metrics trip; nothing else does.
        assert_eq!(report.regressions.len(), 3, "{:?}", report.regressions);
        assert!(report.regressions.iter().all(|r| r.rule.label() == "band"));
        let table = report.render();
        assert!(table.contains("virtual_time_secs"), "{table}");
        assert!(table.contains("+10.0%"), "{table}");
        // And the same slowdown passes a wide CI band.
        assert!(compare(&ledgerish(1.0), &ledgerish(1.10), 0.75).passed());
    }

    #[test]
    fn byte_counts_are_bit_exact() {
        let base = obs::json::parse(r#"{"bytes": {"network_bytes": 123456}}"#).unwrap();
        let fresh = obs::json::parse(r#"{"bytes": {"network_bytes": 123457}}"#).unwrap();
        // Even the widest band never excuses a byte-count drift.
        let report = compare(&base, &fresh, 0.75);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].rule, Rule::Exact);
    }

    #[test]
    fn missing_baseline_key_is_a_regression_but_fresh_only_is_not() {
        let base = obs::json::parse(r#"{"a": 1, "b": 2}"#).unwrap();
        let fresh = obs::json::parse(r#"{"a": 1, "c": 3}"#).unwrap();
        let report = compare(&base, &fresh, 0.05);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].path, "b");
        assert_eq!(report.regressions[0].fresh, "<missing>");
        assert_eq!(report.fresh_only, 1);
    }

    #[test]
    fn hashes_and_labels_never_band() {
        let base = obs::json::parse(r#"{"model_hash": "aa", "label": "x"}"#).unwrap();
        let fresh = obs::json::parse(r#"{"model_hash": "ab", "label": "x"}"#).unwrap();
        let report = compare(&base, &fresh, 10.0);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].path, "model_hash");
    }

    #[test]
    fn classification_table() {
        assert_eq!(classify("runs.0.virtual_time_secs"), Rule::Band);
        assert_eq!(classify("engines.0.recovery_overhead"), Rule::Band);
        assert_eq!(classify("runs.0.registry.counters.time.disk_us"), Rule::BandUs);
        // Modeled category slots are banded; the measured cpu slot (index
        // 0) and `*cpu_us` counters are host noise, ignored.
        assert_eq!(classify("runs.0.attribution_us.1"), Rule::BandUs);
        assert_eq!(classify("runs.0.iterations.2.cat_us.3"), Rule::BandUs);
        assert_eq!(classify("runs.0.attribution_us.0"), Rule::Ignore);
        assert_eq!(classify("runs.0.iterations.2.cat_us.0"), Rule::Ignore);
        assert_eq!(classify("runs.0.registry.counters.time.cpu_us"), Rule::Ignore);
        assert_eq!(classify("runs.0.bytes.network_bytes"), Rule::Exact);
        assert_eq!(classify("runs.0.model_hash"), Rule::Exact);
        assert_eq!(classify("integrity.dropped_events"), Rule::Exact);
        assert_eq!(classify("records.0.encode_mb_per_sec"), Rule::Ignore);
        assert_eq!(classify("speedup"), Rule::Ignore);
        assert_eq!(classify("rowwise_secs"), Rule::Ignore);
        assert_eq!(classify("registry.histograms.stage.compute_secs.p99"), Rule::Ignore);
        assert_eq!(classify("registry.histograms.stage.compute_secs.count"), Rule::Exact);
        // Serving latency histograms are virtual time: banded shape
        // statistics, exact request counts.
        let serve = "runs.4.registry.histograms.serve.batch_latency_virtual_secs";
        assert_eq!(classify(&format!("{serve}.p50")), Rule::Band);
        assert_eq!(classify(&format!("{serve}.p99")), Rule::Band);
        assert_eq!(classify(&format!("{serve}.mean")), Rule::Band);
        assert_eq!(classify(&format!("{serve}.count")), Rule::Exact);
        assert_eq!(classify("runs.4.registry.counters.serve.rejected"), Rule::Exact);
        assert_eq!(classify("serving.latency_p99_virtual_secs"), Rule::Band);
        assert_eq!(classify("serving.trace_hash"), Rule::Exact);
    }
}
