//! Shared command-line handling for the experiment binaries.
//!
//! Every bench binary accepts `--trace FILE` (write a Chrome
//! `trace_event` JSON of the run, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>) and `--help`. Binaries with extra flags pass
//! them in for the help text and parse them themselves.

use std::sync::Arc;

/// Installs a trace collector when `--trace FILE` was given and, on drop,
/// exports the collected events to that file and prints a short summary.
pub struct TraceGuard {
    path: Option<String>,
    collector: Option<Arc<obs::Collector>>,
}

impl TraceGuard {
    /// True when `--trace` was requested.
    pub fn is_tracing(&self) -> bool {
        self.collector.is_some()
    }

    /// The installed collector, if tracing.
    pub fn collector(&self) -> Option<&Arc<obs::Collector>> {
        self.collector.as_ref()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let (Some(path), Some(c)) = (&self.path, &self.collector) else {
            return;
        };
        let _ = obs::uninstall();
        let json = obs::export::export_collector(c);
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "wrote {} trace events to {path} (open in chrome://tracing or ui.perfetto.dev)",
                c.len()
            ),
            Err(e) => eprintln!("failed to write trace to {path}: {e}"),
        }
        if c.dropped() > 0 {
            eprintln!("warning: {} events dropped (buffer full)", c.dropped());
        }
        if c.nesting_violations() > 0 {
            eprintln!("warning: {} span-nesting violations", c.nesting_violations());
        }
        let metrics = c.registry().render();
        if !metrics.is_empty() {
            eprintln!("collector metrics:\n{metrics}");
        }
    }
}

/// Parses the shared flags. Prints help (listing `extra_flags` too) and
/// exits on `--help`/`-h`; exits with an error if `--trace` is missing its
/// argument. Returns a guard that must stay alive for the whole run.
pub fn trace_args(binary: &str, about: &str, extra_flags: &[(&str, &str)]) -> TraceGuard {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{about}\n");
        println!("Usage: {binary} [OPTIONS]\n");
        println!("Options:");
        for (flag, help) in extra_flags {
            println!("  {flag:<18} {help}");
        }
        println!("  {:<18} {}", "--trace FILE", "Write a Chrome trace_event JSON trace of the run");
        println!("  {:<18} {}", "", "(open in chrome://tracing or https://ui.perfetto.dev)");
        println!("  {:<18} {}", "--help", "Show this help");
        std::process::exit(0);
    }
    let path = match args.iter().position(|a| a == "--trace") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => {
                eprintln!("error: --trace requires a file path");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let collector = path.as_ref().map(|_| obs::install_new());
    TraceGuard { path, collector }
}
