//! Shared command-line handling for the experiment binaries.
//!
//! Every bench binary accepts `--trace FILE` (write a Chrome
//! `trace_event` JSON of the run, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>), `--ledger FILE` (write a versioned
//! machine-readable run ledger, the input to `perf_gate`) and `--help`.
//! Binaries with extra flags pass them in for the help text and parse
//! them themselves.

use std::sync::Arc;

/// Installs a trace collector when `--trace FILE` was given and a run-
/// ledger sink when `--ledger FILE` was given; on drop, exports the
/// collected events / ledger to those files and prints a short summary.
pub struct TraceGuard {
    path: Option<String>,
    ledger_path: Option<String>,
    tool: String,
    collector: Option<Arc<obs::Collector>>,
}

impl TraceGuard {
    /// True when `--trace` was requested.
    pub fn is_tracing(&self) -> bool {
        self.collector.is_some()
    }

    /// The installed collector, if tracing.
    pub fn collector(&self) -> Option<&Arc<obs::Collector>> {
        self.collector.as_ref()
    }

    /// True when `--ledger` was requested.
    pub fn is_ledgering(&self) -> bool {
        self.ledger_path.is_some()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        // Ledger first: it snapshots collector integrity counters, and the
        // trace export below uninstalls the collector.
        if let Some(path) = &self.ledger_path {
            let runs = obs::ledger::drain_sink();
            let n = runs.len();
            let ledger = obs::ledger::RunLedger {
                tool: self.tool.clone(),
                runs,
                dropped_events: self.collector.as_ref().map_or(0, |c| c.dropped()),
                nesting_violations: self
                    .collector
                    .as_ref()
                    .map_or(0, |c| c.nesting_violations()),
                collector_registry: self
                    .collector
                    .as_ref()
                    .map(|c| c.registry().snapshot())
                    .unwrap_or_default(),
            };
            match std::fs::write(path, ledger.to_json()) {
                Ok(()) => eprintln!("wrote run ledger ({n} runs) to {path}"),
                Err(e) => eprintln!("failed to write ledger to {path}: {e}"),
            }
        }
        if self.collector.is_some() {
            let _ = obs::uninstall();
        }
        let (Some(path), Some(c)) = (&self.path, &self.collector) else {
            return;
        };
        let json = obs::export::export_collector(c);
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "wrote {} trace events to {path} (open in chrome://tracing or ui.perfetto.dev)",
                c.len()
            ),
            Err(e) => eprintln!("failed to write trace to {path}: {e}"),
        }
        if let Some(warning) = obs::report::dropped_warning(c.dropped()) {
            eprint!("{warning}");
        }
        if c.nesting_violations() > 0 {
            eprintln!("warning: {} span-nesting violations", c.nesting_violations());
        }
        let metrics = c.registry().render();
        if !metrics.is_empty() {
            eprintln!("collector metrics:\n{metrics}");
        }
    }
}

/// Parses the shared flags. Prints help (listing `extra_flags` too) and
/// exits on `--help`/`-h`; exits with an error if `--trace`/`--ledger` is
/// missing its argument. Returns a guard that must stay alive for the
/// whole run.
pub fn trace_args(binary: &str, about: &str, extra_flags: &[(&str, &str)]) -> TraceGuard {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{about}\n");
        println!("Usage: {binary} [OPTIONS]\n");
        println!("Options:");
        for (flag, help) in extra_flags {
            println!("  {flag:<18} {help}");
        }
        println!("  {:<18} {}", "--trace FILE", "Write a Chrome trace_event JSON trace of the run");
        println!("  {:<18} {}", "", "(open in chrome://tracing or https://ui.perfetto.dev)");
        println!("  {:<18} {}", "--ledger FILE", "Write a versioned run-ledger JSON (perf_gate input)");
        println!("  {:<18} {}", "--help", "Show this help");
        std::process::exit(0);
    }
    let flag_value = |flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => {
                eprintln!("error: {flag} requires a file path");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let path = flag_value("--trace");
    let ledger_path = flag_value("--ledger");
    // The ledger producers live inside the fit driver and only run with a
    // trace collector enabled, so --ledger implies a collector even
    // without --trace.
    let collector = if path.is_some() || ledger_path.is_some() {
        Some(obs::install_new())
    } else {
        None
    };
    if ledger_path.is_some() {
        obs::ledger::install_sink();
    }
    TraceGuard { path, ledger_path, tool: binary.to_string(), collector }
}
