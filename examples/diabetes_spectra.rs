//! NMR spectra analysis — the paper's Diabetes dataset scenario: 353
//! patients, tens of thousands of resonance frequencies, real-valued
//! magnitudes. Classic "short and wide" PCA.
//!
//! Demonstrates three things on the spectra replica:
//! 1. the latent metabolic factors are recovered (variance explained);
//! 2. PPCA's missing-value EM imputes corrupted spectra (Section 2.4's
//!    first PPCA advantage);
//! 3. a mixture of PPCA models separates two patient cohorts
//!    (Section 2.4's second advantage).
//!
//! ```text
//! cargo run --release --example diabetes_spectra
//! ```

use spca_repro::prelude::*;
use spca_repro::spca_core::{missing, mixture::MixtureOfPpca};

fn main() {
    let mut rng = Prng::seed_from_u64(31);
    let spectra = diabetes::generate(353, 4_000, &mut rng);
    let y = linalg::SparseMat::from_dense(&spectra);
    println!("spectra: {} patients x {} frequencies", y.rows(), y.cols());

    // ---- 1. Distributed PCA on the wide matrix. ---------------------------
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(8).with_max_iters(12).with_seed(3))
        .fit_spark(&cluster, &y)
        .expect("fit");
    let x = run.model.transform_sparse(&y).expect("project");
    let recon = run.model.reconstruct(&x);
    let rel = spca_repro::linalg::norms::diff_norm1(&spectra, &recon) / spectra.norm1();
    println!(
        "\n8 components reconstruct the spectra to {:.2}% relative L1 error",
        100.0 * rel
    );
    println!("(simulated fit: {:.1} s on an 8-node cluster)", run.virtual_time_secs);

    // ---- 2. Missing-value EM: corrupt 15% of a small cohort, impute. ------
    let cohort = spectra.row_block(0, 80);
    let mut masked = cohort.clone();
    let mut holes = 0;
    for r in 0..masked.rows() {
        for j in 0..masked.cols() {
            if rng.uniform() < 0.15 {
                masked[(r, j)] = f64::NAN;
                holes += 1;
            }
        }
    }
    let model = missing::fit_missing(&masked, 6, 15, 11).expect("missing-value EM");
    let imputed = missing::impute(&masked, &model).expect("imputation");
    let mut err = 0.0;
    let mut base = 0.0;
    for r in 0..cohort.rows() {
        for j in 0..cohort.cols() {
            if masked[(r, j)].is_nan() {
                err += (imputed[(r, j)] - cohort[(r, j)]).abs();
                base += cohort[(r, j)].abs();
            }
        }
    }
    println!(
        "\nmissing-value EM: imputed {holes} held-out entries at {:.2}% relative error",
        100.0 * err / base
    );

    // ---- 3. Mixture of PPCA: separate two synthetic cohorts. --------------
    // Second cohort: same machine, systematically shifted baseline.
    let mut rng2 = Prng::seed_from_u64(99);
    let mut cohort_b = diabetes::generate(80, 500, &mut rng2);
    for v in cohort_b.data_mut() {
        *v += 1.5;
    }
    let mut rng3 = Prng::seed_from_u64(31);
    let cohort_a = diabetes::generate(80, 500, &mut rng3);
    let stacked = linalg::Mat::vcat(&[cohort_a, cohort_b]);
    let mix = MixtureOfPpca::fit(&stacked, 2, 3, 20, 17).expect("mixture fit");
    let assign = mix.assign(&stacked).expect("assignment");
    let first_half_label = assign[..80].iter().filter(|&&a| a == assign[0]).count();
    let second_half_other = assign[80..].iter().filter(|&&a| a != assign[0]).count();
    println!(
        "\nmixture of PPCA: cohort A consistency {}/80, cohort B separation {}/80 \
         (weights {:.2}/{:.2})",
        first_half_label, second_half_other, mix.weights[0], mix.weights[1]
    );
}
