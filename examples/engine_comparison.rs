//! A miniature Table 2: the four algorithms (sPCA-Spark, MLlib-PCA,
//! sPCA-MapReduce, Mahout-PCA) on one dataset, with simulated running
//! time, intermediate data, and final error side by side.
//!
//! ```text
//! cargo run --release --example engine_comparison
//! ```

use spca_repro::baselines::{MahoutConfig, MllibConfig};
use spca_repro::prelude::*;

fn main() {
    let mut rng = Prng::seed_from_u64(2026);
    let y = spca_repro::datasets::biotext::generate(8_000, 1_500, &mut rng);
    println!(
        "dataset: Bio-Text-like {} x {} ({} nnz)\ncluster: 8 nodes x 8 cores (simulated)\n",
        y.rows(),
        y.cols(),
        y.nnz()
    );

    let d = 20;
    println!(
        "{:<16} {:>12} {:>18} {:>12}",
        "algorithm", "sim time (s)", "intermediate data", "final error"
    );

    let config = SpcaConfig::new(d).with_max_iters(5).with_rel_tolerance(None).with_seed(1);

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(config.clone()).fit_spark(&cluster, &y).expect("spark fit");
    print_row("sPCA-Spark", run.virtual_time_secs, run.intermediate_bytes, run.final_error());

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    match MllibPca::new(MllibConfig::new(d)).fit(&cluster, &y) {
        Ok(run) => print_row(
            "MLlib-PCA",
            run.virtual_time_secs,
            run.intermediate_bytes,
            run.final_error(),
        ),
        Err(e) => println!("{:<16} {:>12}   ({e})", "MLlib-PCA", "FAIL"),
    }

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(config).fit_mapreduce(&cluster, &y).expect("mapreduce fit");
    print_row(
        "sPCA-MapReduce",
        run.virtual_time_secs,
        run.intermediate_bytes,
        run.final_error(),
    );

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = MahoutPca::new(MahoutConfig::new(d).with_max_iters(2).with_seed(1))
        .fit(&cluster, &y)
        .expect("mahout fit");
    print_row("Mahout-PCA", run.virtual_time_secs, run.intermediate_bytes, run.final_error());

    println!(
        "\nexpected shape (paper, Table 2): sPCA-Spark fastest; sPCA-MapReduce well\n\
         ahead of Mahout-PCA; Mahout generates orders of magnitude more\n\
         intermediate data."
    );
}

fn print_row(name: &str, secs: f64, bytes: u64, err: f64) {
    let mb = bytes as f64 / (1024.0 * 1024.0);
    println!("{name:<16} {secs:>12.1} {:>15.1} MB {err:>12.4}", mb);
}
