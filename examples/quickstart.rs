//! Quickstart: fit sPCA on a synthetic sparse dataset and inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spca_repro::prelude::*;

fn main() {
    // 1. A seeded synthetic dataset: 20,000 tweet-like documents over a
    //    4,000-word vocabulary (sparse binary term matrix).
    let mut rng = Prng::seed_from_u64(42);
    let y = spca_repro::datasets::tweets::generate(20_000, 4_000, &mut rng);
    println!(
        "dataset: {} x {}, {} non-zeros ({:.4}% dense)",
        y.rows(),
        y.cols(),
        y.nnz(),
        100.0 * y.density()
    );

    // 2. A simulated cluster shaped like the paper's testbed
    //    (8 nodes x 8 cores).
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());

    // 3. Fit 10 principal components with sPCA on the Spark-like engine.
    let config = SpcaConfig::new(10).with_max_iters(8).with_seed(7);
    let run = Spca::new(config).fit_spark(&cluster, &y).expect("sPCA fit");

    println!("\nEM progress:");
    for it in &run.iterations {
        println!(
            "  iteration {:>2}: reconstruction error {:.4}, ss {:.5}, t = {:>6.1}s (simulated)",
            it.iteration, it.error, it.ss, it.virtual_time_secs
        );
    }

    // 4. The fitted model: components, projection, reconstruction.
    let model = &run.model;
    println!(
        "\nmodel: C is {} x {}, noise variance ss = {:.5}",
        model.input_dim(),
        model.output_dim(),
        model.noise_variance()
    );

    let projected = model.transform_sparse(&y).expect("projection");
    println!(
        "projected the {}-dimensional rows down to {} latent dimensions",
        model.input_dim(),
        projected.cols()
    );

    // 5. What did the distributed execution cost?
    let metrics = cluster.metrics();
    println!("\nsimulated execution:");
    println!("  virtual time     : {:.1} s", run.virtual_time_secs);
    println!("  intermediate data: {} bytes", run.intermediate_bytes);
    println!("  driver peak      : {} bytes", metrics.driver_peak_bytes);
    println!("  stages executed  : {}", metrics.stages.len());
}
