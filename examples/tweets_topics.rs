//! PCA as the front end of clustering — the paper's motivation that PCA
//! "is a key step in many other machine learning algorithms that do not
//! perform well with high-dimensional data such as k-means clustering",
//! and that "the principal components explain the principal terms in a
//! set of documents".
//!
//! Fits sPCA on a Tweets-like term matrix with planted topics, then:
//! 1. lists the top-weighted vocabulary per component;
//! 2. runs a small k-means in the 6-dimensional *latent* space and scores
//!    it against the planted topic labels — clustering in 1,200
//!    dimensions of sparse binary data directly is exactly what the paper
//!    says does not work well.
//!
//! ```text
//! cargo run --release --example tweets_topics
//! ```

use spca_repro::prelude::*;

fn main() {
    // Strongly topical corpus: 6 topics, high affinity.
    let spec = lowrank::LowRankSpec {
        rows: 10_000,
        cols: 1_200,
        topics: 6,
        words_per_row: 12.0,
        topic_affinity: 0.9,
        zipf_exponent: 1.0,
    };
    let mut rng = Prng::seed_from_u64(123);
    let (y, labels) = lowrank::sparse_lowrank_labeled(&spec, &mut rng);
    println!("corpus: {} documents, vocabulary {}", y.rows(), y.cols());

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(6).with_max_iters(12).with_seed(9))
        .fit_spark(&cluster, &y)
        .expect("fit");
    let model = &run.model;

    // Top-weighted vocabulary entries per component ("principal terms").
    println!("\ntop words (column ids) per principal component:");
    let c = model.components();
    for comp in 0..model.output_dim() {
        let mut weighted: Vec<(usize, f64)> =
            (0..c.rows()).map(|w| (w, c[(w, comp)].abs())).collect();
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = weighted[..8].iter().map(|(w, _)| w.to_string()).collect();
        println!("  component {comp}: words [{}]", top.join(", "));
    }

    // Project to latent space, then k-means there.
    let x = model.transform_sparse(&y).expect("projection");
    let assignments = kmeans(&x, spec.topics, 25, 77);
    let purity = cluster_purity(&assignments, &labels, spec.topics);
    println!(
        "\nk-means over the {}-dimensional latent space: purity {:.1}% against \
         the planted topics",
        model.output_dim(),
        100.0 * purity
    );
    println!("(random assignment would score ~{:.1}%)", 100.0 / spec.topics as f64);
    println!("simulated fit time: {:.1} s", run.virtual_time_secs);
    assert!(purity > 0.5, "latent k-means should beat chance decisively");
}

/// Plain Lloyd's k-means on dense rows.
fn kmeans(x: &linalg::Mat, k: usize, iters: usize, seed: u64) -> Vec<usize> {
    let mut rng = Prng::seed_from_u64(seed);
    let picks = rng.sample_indices(x.rows(), k);
    let mut centers: Vec<Vec<f64>> = picks.iter().map(|&r| x.row(r).to_vec()).collect();
    let mut assign = vec![0usize; x.rows()];
    for _ in 0..iters {
        for r in 0..x.rows() {
            let row = x.row(r);
            assign[r] = (0..k)
                .min_by(|&a, &b| {
                    let da = sq_dist(row, &centers[a]);
                    let db = sq_dist(row, &centers[b]);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
        }
        let mut sums = vec![vec![0.0; x.cols()]; k];
        let mut counts = vec![0usize; k];
        for r in 0..x.rows() {
            linalg::vector::axpy(1.0, x.row(r), &mut sums[assign[r]]);
            counts[assign[r]] += 1;
        }
        for ((center, sum), count) in centers.iter_mut().zip(sums).zip(counts) {
            if count > 0 {
                *center = sum.into_iter().map(|v| v / count as f64).collect();
            }
        }
    }
    assign
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Fraction of documents whose cluster's majority label matches their own.
fn cluster_purity(assign: &[usize], labels: &[usize], k: usize) -> f64 {
    let mut counts = vec![vec![0usize; k]; k];
    for (&a, &l) in assign.iter().zip(labels) {
        counts[a][l] += 1;
    }
    let correct: usize = counts.iter().map(|c| c.iter().max().copied().unwrap_or(0)).sum();
    correct as f64 / assign.len() as f64
}
