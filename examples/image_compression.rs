//! Dimensionality reduction of dense image features — the paper's
//! compression/k-means motivation: "since matrix X is much smaller than
//! the original matrix Y, it can be used as input to other machine
//! learning algorithms such as k-means clustering".
//!
//! Fits PCA on SIFT-like 128-dimensional descriptors, sweeps the retained
//! component count, and reports the compression/error trade-off. Also
//! demonstrates model persistence (save/load of the fitted model).
//!
//! ```text
//! cargo run --release --example image_compression
//! ```

use spca_repro::prelude::*;
use spca_repro::spca_core::model::PcaModel;

fn main() {
    let mut rng = Prng::seed_from_u64(77);
    let features = images::generate(20_000, images::SIFT_DIM, &mut rng);
    let y = linalg::SparseMat::from_dense(&features);
    println!("features: {} descriptors x {} dims (dense)", y.rows(), y.cols());

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    println!("\n d | stored floats | compression | rel. L1 error | fit time (sim s)");
    println!("---+---------------+-------------+---------------+-----------------");
    let mut best: Option<PcaModel> = None;
    for d in [4usize, 8, 16, 32] {
        let run = Spca::new(SpcaConfig::new(d).with_max_iters(8).with_seed(5))
            .fit_spark(&cluster, &y)
            .expect("fit");
        let x = run.model.transform_sparse(&y).expect("project");
        let recon = run.model.reconstruct(&x);
        let rel = spca_repro::linalg::norms::diff_norm1(&features, &recon) / features.norm1();

        let original = y.rows() * y.cols();
        let compressed = y.rows() * d + y.cols() * d + y.cols();
        println!(
            "{d:>2} | {compressed:>13} | {:>10.1}x | {rel:>13.4} | {:>15.1}",
            original as f64 / compressed as f64,
            run.virtual_time_secs
        );
        best = Some(run.model);
    }

    // Persist the last model and read it back.
    let model = best.expect("at least one model fitted");
    let text = model.to_text();
    let restored = PcaModel::from_text(&text).expect("parse persisted model");
    assert!(restored.components().approx_eq(model.components(), 1e-12));
    println!(
        "\npersisted and restored the d={} model ({} bytes of text)",
        model.output_dim(),
        text.len()
    );
}
