//! The paper's central correctness claim, made executable: "our
//! optimization ideas do not change any theoretical properties of PPCA".
//!
//! The two distributed sPCA implementations (Spark-like and MapReduce)
//! must produce *numerically identical* EM iterates to the dense
//! single-machine reference (Algorithm 1) from the same seed — mean
//! propagation, on-demand X, job consolidation and all.

use dcluster::{ClusterConfig, SimCluster};
use linalg::{Prng, SparseMat};
use spca_core::{ppca, Spca, SpcaConfig};

fn test_matrix() -> SparseMat {
    let mut rng = Prng::seed_from_u64(2024);
    let spec = datasets::LowRankSpec {
        rows: 300,
        cols: 80,
        topics: 4,
        words_per_row: 10.0,
        topic_affinity: 0.8,
        zipf_exponent: 1.0,
    };
    datasets::sparse_lowrank(&spec, &mut rng)
}

#[test]
fn spark_equals_dense_reference() {
    let y = test_matrix();
    let iters = 4;
    let seed = 99;

    let (reference, _) = ppca::fit_dense(&y.to_dense(), 5, iters, seed).unwrap();

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = SpcaConfig::new(5)
        .with_max_iters(iters)
        .with_rel_tolerance(None)
        .with_seed(seed);
    let spark = Spca::new(config).fit_spark(&cluster, &y).unwrap();

    let diff = spark.model.components().max_abs_diff(reference.components());
    assert!(diff < 1e-8, "Spark C deviates from Algorithm 1 by {diff}");
    assert!(
        (spark.model.noise_variance() - reference.noise_variance()).abs() < 1e-10,
        "ss diverged: {} vs {}",
        spark.model.noise_variance(),
        reference.noise_variance()
    );
}

#[test]
fn mapreduce_equals_dense_reference() {
    let y = test_matrix();
    let iters = 4;
    let seed = 7;

    let (reference, _) = ppca::fit_dense(&y.to_dense(), 4, iters, seed).unwrap();

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let config = SpcaConfig::new(4)
        .with_max_iters(iters)
        .with_rel_tolerance(None)
        .with_seed(seed);
    let mr = Spca::new(config).fit_mapreduce(&cluster, &y).unwrap();

    let diff = mr.model.components().max_abs_diff(reference.components());
    assert!(diff < 1e-8, "MapReduce C deviates from Algorithm 1 by {diff}");
}

#[test]
fn partition_count_does_not_change_the_result() {
    // Distributed determinism: 1, 4 or 64 partitions — same model up to
    // floating-point merge order.
    let y = test_matrix();
    let run_with = |parts: usize| {
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let config = SpcaConfig::new(4)
            .with_max_iters(3)
            .with_rel_tolerance(None)
            .with_seed(5)
            .with_partitions(parts);
        Spca::new(config).fit_spark(&cluster, &y).unwrap()
    };
    let single = run_with(1);
    let four = run_with(4);
    let many = run_with(64);
    assert!(single.model.components().max_abs_diff(four.model.components()) < 1e-7);
    assert!(single.model.components().max_abs_diff(many.model.components()) < 1e-7);
}

#[test]
fn same_seed_same_run_different_seed_different_run() {
    let y = test_matrix();
    let fit = |seed: u64| {
        let cluster = SimCluster::new(ClusterConfig::paper_cluster());
        let config =
            SpcaConfig::new(3).with_max_iters(2).with_rel_tolerance(None).with_seed(seed);
        Spca::new(config).fit_spark(&cluster, &y).unwrap()
    };
    let a = fit(1);
    let b = fit(1);
    let c = fit(2);
    assert!(a.model.components().approx_eq(b.model.components(), 0.0), "runs must be bitwise-reproducible");
    assert!(!a.model.components().approx_eq(c.model.components(), 1e-6));
}
