//! Cross-engine behavioural claims from Section 5, tested end to end on
//! the simulated platforms.

use baselines::{MahoutConfig, MahoutPca, MllibConfig, MllibPca};
use dcluster::{ClusterConfig, SimCluster};
use linalg::{Prng, SparseMat};
use spca_core::config::SmartGuess;
use spca_core::{Spca, SpcaConfig};

fn dataset(rows: usize, cols: usize) -> SparseMat {
    let mut rng = Prng::seed_from_u64(88);
    let spec = datasets::LowRankSpec {
        rows,
        cols,
        topics: 6,
        words_per_row: 9.0,
        topic_affinity: 0.8,
        zipf_exponent: 1.0,
    };
    datasets::sparse_lowrank(&spec, &mut rng)
}

#[test]
fn spark_is_faster_than_mapreduce_on_the_same_fit() {
    // Table 2's platform column: same algorithm, same data — the
    // disk-based platform pays job overheads and DFS I/O every iteration.
    let y = dataset(2_000, 400);
    let config = SpcaConfig::new(5).with_max_iters(4).with_rel_tolerance(None);

    let c_spark = SimCluster::new(ClusterConfig::paper_cluster());
    let spark = Spca::new(config.clone()).fit_spark(&c_spark, &y).unwrap();
    let c_mr = SimCluster::new(ClusterConfig::paper_cluster());
    let mr = Spca::new(config).fit_mapreduce(&c_mr, &y).unwrap();

    assert!(
        spark.virtual_time_secs * 3.0 < mr.virtual_time_secs,
        "Spark {}s should be well under MapReduce {}s",
        spark.virtual_time_secs,
        mr.virtual_time_secs
    );
    // And the models still agree (same math, different platform).
    assert!(spark.model.components().max_abs_diff(mr.model.components()) < 1e-8);
}

#[test]
fn mapreduce_routes_intermediate_data_through_the_dfs() {
    let y = dataset(2_000, 400);
    let config = SpcaConfig::new(4).with_max_iters(3).with_rel_tolerance(None);

    let c_mr = SimCluster::new(ClusterConfig::paper_cluster());
    let _ = Spca::new(config.clone()).fit_mapreduce(&c_mr, &y).unwrap();
    assert!(c_mr.metrics().dfs_bytes_written > 0, "MR shuffles spill through the DFS");

    let c_spark = SimCluster::new(ClusterConfig::paper_cluster());
    let _ = Spca::new(config).fit_spark(&c_spark, &y).unwrap();
    assert_eq!(
        c_spark.metrics().dfs_bytes_written,
        0,
        "Spark accumulators stay off the DFS when the RDD fits in memory"
    );
}

#[test]
fn spca_beats_mahout_on_time_and_intermediate_data() {
    let y = dataset(8_000, 600);

    let c1 = SimCluster::new(ClusterConfig::paper_cluster());
    let spca = Spca::new(SpcaConfig::new(5).with_max_iters(3).with_rel_tolerance(None))
        .fit_mapreduce(&c1, &y)
        .unwrap();

    let c2 = SimCluster::new(ClusterConfig::paper_cluster());
    let mahout = MahoutPca::new(MahoutConfig::new(5).with_max_iters(3))
        .fit(&c2, &y)
        .unwrap();

    assert!(
        mahout.intermediate_bytes > 2 * spca.intermediate_bytes,
        "mahout {} B vs spca {} B",
        mahout.intermediate_bytes,
        spca.intermediate_bytes
    );
}

#[test]
fn mllib_wins_on_small_dense_dimensionality() {
    // The Images regime of Table 2: D = 64, dense-ish rows — MLlib's one
    // deterministic pass beats iterative sPCA.
    let mut rng = Prng::seed_from_u64(5);
    let y = datasets::images::generate_sparse(5_000, 64, &mut rng);

    let c1 = SimCluster::new(ClusterConfig::paper_cluster());
    let mllib = MllibPca::new(MllibConfig::new(8)).fit(&c1, &y).unwrap();
    let c2 = SimCluster::new(ClusterConfig::paper_cluster());
    let spca = Spca::new(SpcaConfig::new(8).with_max_iters(10).with_rel_tolerance(None))
        .fit_spark(&c2, &y)
        .unwrap();

    assert!(
        mllib.virtual_time_secs < spca.virtual_time_secs,
        "MLlib {}s should beat sPCA {}s at D=64",
        mllib.virtual_time_secs,
        spca.virtual_time_secs
    );
}

#[test]
fn smart_guess_starts_from_higher_accuracy() {
    let y = dataset(4_000, 500);
    let base = SpcaConfig::new(5).with_max_iters(3).with_rel_tolerance(None).with_seed(3);

    let c1 = SimCluster::new(ClusterConfig::paper_cluster());
    let cold = Spca::new(base.clone()).fit_spark(&c1, &y).unwrap();
    let c2 = SimCluster::new(ClusterConfig::paper_cluster());
    let warm = Spca::new(
        base.with_smart_guess(SmartGuess { sample_fraction: 0.1, iterations: 4 }),
    )
    .fit_spark(&c2, &y)
    .unwrap();

    assert!(
        warm.iterations[0].error < cold.iterations[0].error,
        "smart guess first-iteration error {} should beat cold start {}",
        warm.iterations[0].error,
        cold.iterations[0].error
    );
}

#[test]
fn more_cores_reduce_virtual_time() {
    // Table 4 end to end: same fit on 16 vs 64 virtual cores.
    let y = dataset(20_000, 800);
    let fit = |nodes: usize| {
        let cluster =
            SimCluster::new(ClusterConfig::paper_cluster().with_nodes(nodes));
        Spca::new(
            SpcaConfig::new(5)
                .with_max_iters(3)
                .with_rel_tolerance(None)
                .with_partitions(64),
        )
        .fit_spark(&cluster, &y)
        .unwrap()
        .virtual_time_secs
    };
    let t2 = fit(2);
    let t8 = fit(8);
    assert!(
        t8 < t2 * 0.55,
        "4x the cores should cut virtual time well below half: {t2}s → {t8}s"
    );
}
