//! End-to-end tests of the `spca-cli` binary: generate → info → fit →
//! transform → likelihood, through real files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spca-cli"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spca-cli-test-{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_roundtrip() {
    let dir = workdir("pipeline");
    let data = dir.join("data.sm");
    let model = dir.join("model.txt");
    let latent = dir.join("latent.dm");

    // generate
    let out = cli()
        .args(["generate", "tweets", "800", "300", "--seed", "5", "-o"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("800 x 300"));

    // info
    let out = cli().args(["info", "-i"]).arg(&data).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("rows     : 800"));
    assert!(text.contains("columns  : 300"));

    // fit
    let out = cli()
        .args(["fit", "-d", "4", "--iters", "3", "--engine", "spark", "-i"])
        .arg(&data)
        .arg("-o")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "fit failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // transform
    let out = cli()
        .args(["transform", "-i"])
        .arg(&data)
        .arg("-m")
        .arg(&model)
        .arg("-o")
        .arg(&latent)
        .output()
        .unwrap();
    assert!(out.status.success());
    let x = linalg::io::load_dense(&latent).unwrap();
    assert_eq!((x.rows(), x.cols()), (800, 4));

    // likelihood
    let out = cli()
        .args(["likelihood", "-i"])
        .arg(&data)
        .arg("-m")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("log-likelihood"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fit_is_reproducible_across_invocations() {
    let dir = workdir("repro");
    let data = dir.join("data.sm");
    let m1 = dir.join("m1.txt");
    let m2 = dir.join("m2.txt");

    assert!(cli()
        .args(["generate", "lowrank", "400", "120", "--seed", "9", "-o"])
        .arg(&data)
        .status()
        .unwrap()
        .success());
    for m in [&m1, &m2] {
        assert!(cli()
            .args(["fit", "-d", "3", "--iters", "2", "--seed", "17", "-i"])
            .arg(&data)
            .arg("-o")
            .arg(m)
            .status()
            .unwrap()
            .success());
    }
    assert_eq!(
        std::fs::read_to_string(&m1).unwrap(),
        std::fs::read_to_string(&m2).unwrap(),
        "same seed must produce byte-identical models"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_replays_a_deterministic_multi_tenant_mix() {
    let dir = workdir("serve");
    let data = dir.join("data.sm");
    let model = dir.join("model.txt");

    assert!(cli()
        .args(["generate", "lowrank", "300", "80", "--seed", "4", "-o"])
        .arg(&data)
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["fit", "-d", "3", "--iters", "2", "-i"])
        .arg(&data)
        .arg("-o")
        .arg(&model)
        .status()
        .unwrap()
        .success());

    let run = || {
        let out = cli()
            .args([
                "serve", "--tenants", "2", "--batches", "30", "--batch-rows", "4",
                "--fit-jobs", "1", "--policy", "fifo", "-i",
            ])
            .arg(&data)
            .arg("-m")
            .arg(&model)
            .output()
            .unwrap();
        assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let text = run();
    assert!(text.contains("served 240 requests in 60 batches"), "got:\n{text}");
    assert!(text.contains("trace hash"));
    assert_eq!(text, run(), "a seeded serve replay must be byte-identical");

    // An unknown policy is a usage error, not a panic.
    let out = cli()
        .args(["serve", "--policy", "lifo", "-i"])
        .arg(&data)
        .arg("-m")
        .arg(&model)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors_on_bad_usage() {
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage:"), "should print usage on error");

    let out = cli().args(["fit", "-i", "/nonexistent/file.sm", "-o", "/tmp/x"]).output().unwrap();
    assert!(!out.status.success());
}
