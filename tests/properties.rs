//! Randomized tests over the core invariants that the whole reproduction
//! leans on: mean propagation identities, Frobenius identities,
//! decomposition contracts, and scheduler bounds.
//!
//! Formerly proptest-based; now driven by the in-tree seeded [`Prng`] so
//! the workspace builds offline with zero external dependencies. Each test
//! sweeps a fixed number of seeded cases — deterministic and reproducible
//! from the case index.

use dcluster::scheduler::makespan;
use linalg::decomp::{lu::Lu, qr_thin, svd_jacobi, sym_eigen};
use linalg::{Mat, Prng, SparseMat};
use spca_core::{frobenius, mean_prop};

const CASES: u64 = 64;

/// Seeded stand-in for the old proptest strategy: a small random sparse
/// matrix with dims in `[1, max)` and density in `[0.05, 0.5)`.
fn sparse_matrix(case: u64, max_rows: usize, max_cols: usize) -> SparseMat {
    let mut rng = Prng::seed_from_u64(0x5AA5 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let rows = 1 + rng.index(max_rows - 1);
    let cols = 1 + rng.index(max_cols - 1);
    let density = 0.05 + 0.45 * rng.uniform();
    let mut triplets = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.uniform() < density {
                triplets.push((r, c as u32, rng.normal()));
            }
        }
    }
    SparseMat::from_triplets(rows, cols, &triplets)
}

fn dense_matrix(case: u64, max_rows: usize, max_cols: usize) -> Mat {
    let mut rng = Prng::seed_from_u64(0xD0_0D ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let rows = 1 + rng.index(max_rows - 1);
    let cols = 1 + rng.index(max_cols - 1);
    rng.normal_mat(rows, cols)
}

#[test]
fn frobenius_algorithm3_equals_dense_oracle() {
    for case in 0..CASES {
        let y = sparse_matrix(case, 20, 15);
        let mean = y.col_means();
        let fast = frobenius::centered_sq(&y, &mean);
        let oracle = linalg::norms::centered_frobenius_sq_dense(&y.to_dense(), &mean);
        assert!((fast - oracle).abs() <= 1e-8 * (1.0 + oracle.abs()), "case {case}");
    }
}

#[test]
fn mean_propagation_equals_explicit_centering() {
    for case in 0..CASES {
        let y = sparse_matrix(case, 15, 12);
        let d = 3;
        let mean = y.col_means();
        let cm = Prng::seed_from_u64(case ^ 0xC0FFEE).normal_mat(y.cols(), d);
        let xm = cm.vecmat(&mean);

        let mut partial = mean_prop::YtxPartial::new(d);
        for r in 0..y.rows() {
            partial.add_row(y.row(r), &cm, &xm);
        }
        let (xtx_oracle, ytx_oracle, sum_oracle) = mean_prop::dense_oracle(&y, &mean, &cm);
        assert!(partial.xtx.max_abs_diff(&xtx_oracle) < 1e-8, "case {case}");
        assert!(
            partial.finalize_ytx(&mean).max_abs_diff(&ytx_oracle) < 1e-8,
            "case {case}"
        );
        for (a, b) in partial.sum_x.iter().zip(&sum_oracle) {
            assert!((a - b).abs() < 1e-8, "case {case}");
        }
    }
}

#[test]
fn ytx_partial_merge_is_associative_enough() {
    for case in 0..CASES {
        let y = sparse_matrix(case, 18, 10);
        let d = 2;
        let mut srng = Prng::seed_from_u64(case ^ 0x511);
        let split = (1 + srng.index(16)).min(y.rows().saturating_sub(1));
        let mean = y.col_means();
        let cm = Prng::seed_from_u64(case ^ 0xBEEF).normal_mat(y.cols(), d);
        let xm = cm.vecmat(&mean);

        let mut whole = mean_prop::YtxPartial::new(d);
        for r in 0..y.rows() {
            whole.add_row(y.row(r), &cm, &xm);
        }
        let mut left = mean_prop::YtxPartial::new(d);
        let mut right = mean_prop::YtxPartial::new(d);
        for r in 0..split {
            left.add_row(y.row(r), &cm, &xm);
        }
        for r in split..y.rows() {
            right.add_row(y.row(r), &cm, &xm);
        }
        left.merge(right);
        assert!(left.xtx.max_abs_diff(&whole.xtx) < 1e-9, "case {case}");
        assert_eq!(left.rows_seen, whole.rows_seen, "case {case}");
    }
}

#[test]
fn qr_contract() {
    for case in 0..CASES {
        let a = dense_matrix(case, 12, 12);
        let qr = qr_thin(&a);
        assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-8), "case {case}");
        let k = a.rows().min(a.cols());
        assert!(
            qr.q.matmul_tn(&qr.q).approx_eq(&Mat::identity(k), 1e-8),
            "case {case}"
        );
    }
}

#[test]
fn svd_contract() {
    for case in 0..CASES {
        let a = dense_matrix(case, 10, 10);
        let svd = svd_jacobi(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-7), "case {case}");
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "case {case}");
        }
        assert!(svd.s.iter().all(|&s| s >= 0.0), "case {case}");
    }
}

#[test]
fn lu_solves_what_it_factored() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.index(7);
        // Diagonally dominant → comfortably non-singular.
        let mut a = rng.normal_mat(n, n);
        for i in 0..n {
            a[(i, i)] += 4.0 + n as f64;
        }
        let x_true = rng.normal_vec(n);
        let b = a.matvec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "seed {seed}");
        }
    }
}

#[test]
fn symmetric_eigen_trace_and_residual() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.index(9);
        let g = rng.normal_mat(n, n);
        let mut a = g.clone();
        a.add_assign(&g.transpose());
        a.scale(0.5);
        let eig = sym_eigen(&a).unwrap();
        // Trace is preserved by similarity transforms.
        let eig_sum: f64 = eig.values.iter().sum();
        assert!(
            (eig_sum - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()),
            "seed {seed}"
        );
        // Eigenpair residual.
        for i in 0..n {
            let v = eig.vectors.col(i);
            let av = a.matvec(&v);
            for (x, y) in av.iter().zip(v.iter().map(|&vi| eig.values[i] * vi)) {
                assert!((x - y).abs() < 1e-7, "seed {seed}");
            }
        }
    }
}

#[test]
fn makespan_bounds_and_monotonicity() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.index(39);
        let durations: Vec<f64> = (0..n).map(|_| 10.0 * rng.uniform()).collect();
        let cores = 1 + rng.index(31);
        let m = makespan(&durations, cores);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        let sum: f64 = durations.iter().sum();
        // Lower bounds: longest task, and perfect division of total work.
        assert!(m >= max - 1e-12, "seed {seed}");
        assert!(m >= sum / cores as f64 - 1e-9, "seed {seed}");
        // Upper bound: one core does everything.
        assert!(m <= sum + 1e-9, "seed {seed}");
        // More cores never hurt.
        let m2 = makespan(&durations, cores * 2);
        assert!(m2 <= m + 1e-9, "seed {seed}");
    }
}

#[test]
fn sparse_dense_product_equivalence() {
    for case in 0..CASES {
        let y = sparse_matrix(case, 12, 10);
        let b = Prng::seed_from_u64(case ^ 0xF00D).normal_mat(y.cols(), 4);
        let sparse = y.mul_dense(&b);
        let dense = y.to_dense().matmul(&b);
        assert!(sparse.approx_eq(&dense, 1e-9), "case {case}");
    }
}
