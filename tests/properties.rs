//! Property-based tests (proptest) over the core invariants that the
//! whole reproduction leans on: mean propagation identities, Frobenius
//! identities, decomposition contracts, and scheduler bounds.

use proptest::prelude::*;

use dcluster::scheduler::makespan;
use linalg::decomp::{lu::Lu, qr_thin, svd_jacobi, sym_eigen};
use linalg::{Mat, Prng, SparseMat};
use spca_core::{frobenius, mean_prop};

/// Strategy: a small random sparse matrix with given bounds.
fn sparse_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = SparseMat> {
    (1..max_rows, 1..max_cols, any::<u64>(), 0.05f64..0.5).prop_map(
        |(rows, cols, seed, density)| {
            let mut rng = Prng::seed_from_u64(seed);
            let mut triplets = Vec::new();
            for r in 0..rows {
                for c in 0..cols {
                    if rng.uniform() < density {
                        triplets.push((r, c as u32, rng.normal()));
                    }
                }
            }
            SparseMat::from_triplets(rows, cols, &triplets)
        },
    )
}

fn dense_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (1..max_rows, 1..max_cols, any::<u64>()).prop_map(|(rows, cols, seed)| {
        Prng::seed_from_u64(seed).normal_mat(rows, cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frobenius_algorithm3_equals_dense_oracle(y in sparse_matrix(20, 15)) {
        let mean = y.col_means();
        let fast = frobenius::centered_sq(&y, &mean);
        let oracle = linalg::norms::centered_frobenius_sq_dense(&y.to_dense(), &mean);
        prop_assert!((fast - oracle).abs() <= 1e-8 * (1.0 + oracle.abs()));
    }

    #[test]
    fn mean_propagation_equals_explicit_centering(
        y in sparse_matrix(15, 12),
        seed in any::<u64>(),
    ) {
        let d = 3;
        let mean = y.col_means();
        let cm = Prng::seed_from_u64(seed).normal_mat(y.cols(), d);
        let xm = cm.vecmat(&mean);

        let mut partial = mean_prop::YtxPartial::new(d);
        for r in 0..y.rows() {
            partial.add_row(y.row(r), &cm, &xm);
        }
        let (xtx_oracle, ytx_oracle, sum_oracle) = mean_prop::dense_oracle(&y, &mean, &cm);
        prop_assert!(partial.xtx.max_abs_diff(&xtx_oracle) < 1e-8);
        prop_assert!(partial.finalize_ytx(&mean).max_abs_diff(&ytx_oracle) < 1e-8);
        for (a, b) in partial.sum_x.iter().zip(&sum_oracle) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn ytx_partial_merge_is_associative_enough(
        y in sparse_matrix(18, 10),
        seed in any::<u64>(),
        split in 1usize..17,
    ) {
        let d = 2;
        let split = split.min(y.rows().saturating_sub(1)).max(0);
        let mean = y.col_means();
        let cm = Prng::seed_from_u64(seed).normal_mat(y.cols(), d);
        let xm = cm.vecmat(&mean);

        let mut whole = mean_prop::YtxPartial::new(d);
        for r in 0..y.rows() {
            whole.add_row(y.row(r), &cm, &xm);
        }
        let mut left = mean_prop::YtxPartial::new(d);
        let mut right = mean_prop::YtxPartial::new(d);
        for r in 0..split {
            left.add_row(y.row(r), &cm, &xm);
        }
        for r in split..y.rows() {
            right.add_row(y.row(r), &cm, &xm);
        }
        left.merge(right);
        prop_assert!(left.xtx.max_abs_diff(&whole.xtx) < 1e-9);
        prop_assert_eq!(left.rows_seen, whole.rows_seen);
    }

    #[test]
    fn qr_contract(a in dense_matrix(12, 12)) {
        let qr = qr_thin(&a);
        prop_assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-8));
        let k = a.rows().min(a.cols());
        prop_assert!(qr.q.matmul_tn(&qr.q).approx_eq(&Mat::identity(k), 1e-8));
    }

    #[test]
    fn svd_contract(a in dense_matrix(10, 10)) {
        let svd = svd_jacobi(&a).unwrap();
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-7));
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(svd.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn lu_solves_what_it_factored(seed in any::<u64>(), n in 1usize..8) {
        let mut rng = Prng::seed_from_u64(seed);
        // Diagonally dominant → comfortably non-singular.
        let mut a = rng.normal_mat(n, n);
        for i in 0..n {
            a[(i, i)] += 4.0 + n as f64;
        }
        let x_true = rng.normal_vec(n);
        let b = a.matvec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn symmetric_eigen_trace_and_residual(seed in any::<u64>(), n in 1usize..10) {
        let mut rng = Prng::seed_from_u64(seed);
        let g = rng.normal_mat(n, n);
        let mut a = g.clone();
        a.add_assign(&g.transpose());
        a.scale(0.5);
        let eig = sym_eigen(&a).unwrap();
        // Trace is preserved by similarity transforms.
        let eig_sum: f64 = eig.values.iter().sum();
        prop_assert!((eig_sum - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()));
        // Eigenpair residual.
        for i in 0..n {
            let v = eig.vectors.col(i);
            let av = a.matvec(&v);
            for (x, y) in av.iter().zip(v.iter().map(|&vi| eig.values[i] * vi)) {
                prop_assert!((x - y).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn makespan_bounds_and_monotonicity(
        durations in proptest::collection::vec(0.0f64..10.0, 1..40),
        cores in 1usize..32,
    ) {
        let m = makespan(&durations, cores);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        let sum: f64 = durations.iter().sum();
        // Lower bounds: longest task, and perfect division of total work.
        prop_assert!(m >= max - 1e-12);
        prop_assert!(m >= sum / cores as f64 - 1e-9);
        // Upper bound: one core does everything.
        prop_assert!(m <= sum + 1e-9);
        // More cores never hurt.
        let m2 = makespan(&durations, cores * 2);
        prop_assert!(m2 <= m + 1e-9);
    }

    #[test]
    fn sparse_dense_product_equivalence(
        y in sparse_matrix(12, 10),
        seed in any::<u64>(),
    ) {
        let b = Prng::seed_from_u64(seed).normal_mat(y.cols(), 4);
        let sparse = y.mul_dense(&b);
        let dense = y.to_dense().matmul(&b);
        prop_assert!(sparse.approx_eq(&dense, 1e-9));
    }
}
