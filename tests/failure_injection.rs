//! Failure injection through the full sPCA stack: the paper picks
//! MapReduce/Spark over MPI precisely for "transparent handling of
//! failures" — so a fit under injected task failures must produce exactly
//! the same model, just later.

use dcluster::{ClusterConfig, SimCluster};
use linalg::Prng;
use spca_core::{Spca, SpcaConfig};

fn data() -> linalg::SparseMat {
    let mut rng = Prng::seed_from_u64(50);
    datasets::sparse_lowrank(&datasets::LowRankSpec::small_test(), &mut rng)
}

#[test]
fn spark_fit_is_failure_transparent() {
    let y = data();
    let config = SpcaConfig::new(3).with_max_iters(3).with_rel_tolerance(None).with_seed(4);

    let healthy = SimCluster::new(ClusterConfig::paper_cluster());
    let clean = Spca::new(config.clone()).fit_spark(&healthy, &y).unwrap();

    let flaky =
        SimCluster::new(ClusterConfig::paper_cluster().with_task_failure_rate(0.25));
    let faulty = Spca::new(config).fit_spark(&flaky, &y).unwrap();

    assert!(
        clean.model.components().approx_eq(faulty.model.components(), 0.0),
        "task retries must not change the fitted model at all"
    );
    assert!(
        faulty.virtual_time_secs >= clean.virtual_time_secs,
        "retries cost time: {} vs {}",
        clean.virtual_time_secs,
        faulty.virtual_time_secs
    );
}

#[test]
fn mapreduce_fit_is_failure_transparent() {
    let y = data();
    let config = SpcaConfig::new(3).with_max_iters(2).with_rel_tolerance(None).with_seed(4);

    let healthy = SimCluster::new(ClusterConfig::paper_cluster());
    let clean = Spca::new(config.clone()).fit_mapreduce(&healthy, &y).unwrap();

    let flaky =
        SimCluster::new(ClusterConfig::paper_cluster().with_task_failure_rate(0.25));
    let faulty = Spca::new(config).fit_mapreduce(&flaky, &y).unwrap();

    assert!(clean.model.components().approx_eq(faulty.model.components(), 0.0));
    assert!(faulty.virtual_time_secs > clean.virtual_time_secs);
}

#[test]
fn heavy_failure_rates_still_complete() {
    let y = data();
    let brutal =
        SimCluster::new(ClusterConfig::paper_cluster().with_task_failure_rate(0.9));
    let run = Spca::new(SpcaConfig::new(2).with_max_iters(2).with_rel_tolerance(None))
        .fit_spark(&brutal, &y)
        .unwrap();
    assert_eq!(run.model.output_dim(), 2);
}
