//! End-to-end statistical correctness: every PCA implementation in the
//! repository must recover the principal subspace of the data, agreeing
//! with the exact SVD.

use dcluster::{ClusterConfig, SimCluster};
use linalg::decomp::{qr_thin, svd_jacobi};
use linalg::{Mat, Prng, SparseMat};

use baselines::{mahout_ssvd, mllib_pca, svd_bidiag, svd_lanczos};
use spca_core::{Spca, SpcaConfig};

/// Cosine of the largest principal angle between two subspaces.
fn alignment(a: &Mat, b: &Mat) -> f64 {
    let qa = qr_thin(a).q;
    let qb = qr_thin(b).q;
    let overlap = qa.matmul_tn(&qb);
    *svd_jacobi(&overlap).unwrap().s.last().unwrap()
}

fn data() -> (SparseMat, Mat) {
    let mut rng = Prng::seed_from_u64(404);
    let spec = datasets::LowRankSpec {
        rows: 500,
        cols: 120,
        topics: 3,
        words_per_row: 14.0,
        topic_affinity: 0.9,
        zipf_exponent: 1.0,
    };
    let y = datasets::sparse_lowrank(&spec, &mut rng);
    // Exact top-3 right singular subspace of the centered matrix.
    let mut yc = y.to_dense();
    yc.sub_row_vector(&y.col_means());
    let svd = svd_jacobi(&yc).unwrap();
    let mut top = Mat::zeros(y.cols(), 3);
    for j in 0..3 {
        for r in 0..y.cols() {
            top[(r, j)] = svd.vt[(j, r)];
        }
    }
    (y, top)
}

#[test]
fn spca_spark_recovers_svd_subspace() {
    let (y, truth) = data();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(3).with_max_iters(25).with_rel_tolerance(None))
        .fit_spark(&cluster, &y)
        .unwrap();
    let a = alignment(run.model.components(), &truth);
    assert!(a > 0.98, "sPCA-Spark alignment {a}");
}

#[test]
fn mahout_recovers_svd_subspace() {
    let (y, truth) = data();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = mahout_ssvd::MahoutPca::new(
        mahout_ssvd::MahoutConfig::new(3).with_max_iters(3),
    )
    .fit(&cluster, &y)
    .unwrap();
    let a = alignment(run.model.components(), &truth);
    // SSVD is a randomized approximation; it tracks the subspace but not
    // to the exactness of the deterministic methods.
    assert!(a > 0.95, "Mahout alignment {a}");
}

#[test]
fn mllib_recovers_svd_subspace() {
    let (y, truth) = data();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = mllib_pca::MllibPca::new(mllib_pca::MllibConfig::new(3))
        .fit(&cluster, &y)
        .unwrap();
    let a = alignment(run.model.components(), &truth);
    assert!(a > 0.999, "MLlib alignment {a} (deterministic method should be exact)");
}

#[test]
fn svd_bidiag_recovers_svd_subspace() {
    let (y, truth) = data();
    let model = svd_bidiag::fit_sparse(&y, 3).unwrap();
    let a = alignment(model.components(), &truth);
    assert!(a > 0.999, "SVD-Bidiag alignment {a}");
}

#[test]
fn svd_lanczos_recovers_svd_subspace() {
    let (y, truth) = data();
    let model = svd_lanczos::fit_implicit(&y, 3, 20, 5).unwrap();
    let a = alignment(model.components(), &truth);
    assert!(a > 0.999, "SVD-Lanczos alignment {a}");
}

#[test]
fn all_methods_agree_pairwise() {
    // The five implementations approach the same subspace, so they must
    // also agree with each other — a consistency web across every crate.
    let (y, _) = data();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let spca = Spca::new(SpcaConfig::new(3).with_max_iters(25).with_rel_tolerance(None))
        .fit_spark(&cluster, &y)
        .unwrap();
    let mllib = mllib_pca::MllibPca::new(mllib_pca::MllibConfig::new(3))
        .fit(&cluster, &y)
        .unwrap();
    let lanczos = svd_lanczos::fit_implicit(&y, 3, 20, 5).unwrap();

    assert!(alignment(spca.model.components(), mllib.model.components()) > 0.98);
    assert!(alignment(mllib.model.components(), lanczos.components()) > 0.999);
}
