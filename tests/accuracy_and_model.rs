//! End-to-end tests of the evaluation pipeline itself: the accuracy
//! metric, the percent-of-ideal scale, stop conditions, and model
//! persistence through a full distributed fit.

use dcluster::{ClusterConfig, SimCluster};
use linalg::{Prng, SparseMat};
use spca_core::model::PcaModel;
use spca_core::{accuracy, Spca, SpcaConfig};

fn dataset() -> SparseMat {
    let mut rng = Prng::seed_from_u64(606);
    let spec = datasets::LowRankSpec {
        rows: 1_500,
        cols: 300,
        topics: 5,
        words_per_row: 10.0,
        topic_affinity: 0.85,
        zipf_exponent: 1.0,
    };
    datasets::sparse_lowrank(&spec, &mut rng)
}

#[test]
fn error_decreases_and_percent_increases_over_iterations() {
    let y = dataset();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(5).with_max_iters(12).with_rel_tolerance(None))
        .fit_spark(&cluster, &y)
        .unwrap();
    let ideal = run.final_error();

    let first = run.iterations.first().unwrap();
    let last = run.iterations.last().unwrap();
    assert!(last.error <= first.error, "error must improve overall");

    let p_first = accuracy::percent_of_ideal(first.error, ideal);
    let p_last = accuracy::percent_of_ideal(last.error, ideal);
    assert!(p_last >= p_first);
    assert!((p_last - 100.0).abs() < 1e-9, "final iteration defines ideal here");
}

#[test]
fn target_error_stop_halts_early() {
    let y = dataset();

    // Reference run to learn the achievable error.
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let full = Spca::new(SpcaConfig::new(5).with_max_iters(12).with_rel_tolerance(None))
        .fit_spark(&cluster, &y)
        .unwrap();
    let ideal = full.final_error();
    let target = accuracy::target_error_for(ideal, 90.0);

    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let early = Spca::new(
        SpcaConfig::new(5)
            .with_max_iters(12)
            .with_rel_tolerance(None)
            .with_target_error(target),
    )
    .fit_spark(&cluster, &y)
    .unwrap();

    assert!(early.iterations.len() < full.iterations.len(), "target stop must cut iterations");
    assert!(early.final_error() <= target);
    assert!(early.time_to_error(target).is_some());
}

#[test]
fn rel_tolerance_stop_halts_on_plateau() {
    let y = dataset();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(5).with_max_iters(30).with_rel_tolerance(Some(1e-2)))
        .fit_spark(&cluster, &y)
        .unwrap();
    assert!(
        run.iterations.len() < 30,
        "1% relative tolerance should stop well before 30 iterations (got {})",
        run.iterations.len()
    );
}

#[test]
fn fitted_model_survives_text_roundtrip() {
    let y = dataset();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(4).with_max_iters(4))
        .fit_spark(&cluster, &y)
        .unwrap();

    let restored = PcaModel::from_text(&run.model.to_text()).unwrap();
    // The restored model must score identically on the same sample.
    let sample = accuracy::sample_rows(&y, 128, 42);
    let e1 = accuracy::reconstruction_error(&sample, &run.model).unwrap();
    let e2 = accuracy::reconstruction_error(&sample, &restored).unwrap();
    assert!((e1 - e2).abs() < 1e-9, "persisted model scores differently: {e1} vs {e2}");
}

#[test]
fn transform_reconstruct_shapes_compose() {
    let y = dataset();
    let cluster = SimCluster::new(ClusterConfig::paper_cluster());
    let run = Spca::new(SpcaConfig::new(6).with_max_iters(4))
        .fit_spark(&cluster, &y)
        .unwrap();
    let x = run.model.transform_sparse(&y).unwrap();
    assert_eq!((x.rows(), x.cols()), (y.rows(), 6));
    let back = run.model.reconstruct(&x);
    assert_eq!((back.rows(), back.cols()), (y.rows(), y.cols()));
}

#[test]
fn error_sample_is_stable_across_engines() {
    // Spark and MapReduce runs with the same seed must evaluate error on
    // the same sampled rows — otherwise their accuracy curves are not
    // comparable.
    let y = dataset();
    let config = SpcaConfig::new(4).with_max_iters(2).with_rel_tolerance(None).with_seed(11);
    let c1 = SimCluster::new(ClusterConfig::paper_cluster());
    let spark = Spca::new(config.clone()).fit_spark(&c1, &y).unwrap();
    let c2 = SimCluster::new(ClusterConfig::paper_cluster());
    let mr = Spca::new(config).fit_mapreduce(&c2, &y).unwrap();
    for (a, b) in spark.iterations.iter().zip(&mr.iterations) {
        assert!((a.error - b.error).abs() < 1e-9, "iteration errors diverged");
    }
}
